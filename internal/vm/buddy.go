package vm

// Buddy physical-frame allocation.  The seed allocator was a LIFO free
// stack: contiguity existed only on a fresh machine, and the first churn
// epoch destroyed it forever — once the stack's order is a random
// permutation, AllocN hands out scattered frames until reboot, and the
// superpage promotion path (which demands physically contiguous, aligned
// frames) fires only for pools allocated at boot.
//
// The buddy allocator makes contiguity a renewable resource.  Free memory
// is kept in order-indexed free lists: order k holds blocks of 1<<k
// frames whose start frame is aligned to the block size.  Allocation
// splits the smallest sufficient block (charging Splits); freeing a block
// re-inserts it and greedily merges it with its buddy — the unique
// same-sized neighbor at start^size — as long as the buddy is also free
// (charging Coalesces).  Blocks within each order are kept in a min-heap
// by start frame, so allocation is address-sorted and deterministic:
// a fresh machine hands out frames 1, 2, 3, ... exactly as the LIFO
// stack did, and a drained machine coalesces back to the same maximal
// block cover it booted with, no matter in what order the frees arrived.
//
// On a multi-socket machine (NewBuddyPhysMemNUMA) the free lists are kept
// per socket: frames are homed on sockets by contiguous address range, each
// socket gets its own order-indexed heaps covering exactly its range, and
// blocks never straddle a socket boundary (the boot cover is built per
// socket, merges only combine blocks from the same socket's heaps, and
// freeRangeLocked clips blocks at the boundary).  AllocOn/AllocNOn/
// AllocContigOn drain the preferred socket's lists before spilling to the
// others in ascending order; since socket ranges ascend by address, the
// socket-agnostic forms (preference -1) still hand out the globally
// lowest-addressed free frames — on one socket the allocator is
// bit-identical to the flat PR 5 buddy.
//
// Frame 0 stays the "no frame" sentinel: the cover starts at frame 1, so
// the order-0 block {1} simply has no free buddy, ever.

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
)

// MaxContigOrder is the largest buddy block order: blocks span at most
// 1<<MaxContigOrder frames (4 MB of 4 KB pages), comfortably covering the
// 2 MB-equivalent superpage span with alignment to spare.
const MaxContigOrder = 10

// MaxContigPages is the largest physically contiguous extent AllocContig
// can return in one call; wider pools are built from multiple extents.
const MaxContigPages = 1 << MaxContigOrder

// ErrNoContig is returned by AllocContig when no free block can satisfy
// the requested size and alignment — either the pool is a LIFO (non-buddy)
// pool, which cannot promise contiguity at all, or fragmentation has
// (for now) consumed every covering block.  Frames may still be free:
// callers that can live with scattered pages fall back to AllocN.
var ErrNoContig = errors.New("vm: no physically contiguous extent available")

// orderHeap is one order's free list: a min-heap of block start frames
// with a position index, so the lowest-addressed block pops in O(log n)
// and a specific buddy can be removed for coalescing in O(log n).
type orderHeap struct {
	starts []uint64
	pos    map[uint64]int
}

func (h *orderHeap) len() int { return len(h.starts) }

func (h *orderHeap) swap(i, j int) {
	h.starts[i], h.starts[j] = h.starts[j], h.starts[i]
	h.pos[h.starts[i]] = i
	h.pos[h.starts[j]] = j
}

func (h *orderHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.starts[p] <= h.starts[i] {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *orderHeap) siftDown(i int) {
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(h.starts) && h.starts[l] < h.starts[m] {
			m = l
		}
		if r < len(h.starts) && h.starts[r] < h.starts[m] {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *orderHeap) push(s uint64) {
	if h.pos == nil {
		h.pos = make(map[uint64]int)
	}
	h.starts = append(h.starts, s)
	h.pos[s] = len(h.starts) - 1
	h.siftUp(len(h.starts) - 1)
}

func (h *orderHeap) popMin() uint64 {
	s := h.starts[0]
	h.removeAt(0)
	return s
}

// remove deletes the block starting at s, reporting whether it was free
// at this order — the buddy-merge probe.
func (h *orderHeap) remove(s uint64) bool {
	i, ok := h.pos[s]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

func (h *orderHeap) removeAt(i int) {
	last := len(h.starts) - 1
	delete(h.pos, h.starts[i])
	if i != last {
		h.starts[i] = h.starts[last]
		h.pos[h.starts[i]] = i
	}
	h.starts = h.starts[:last]
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
}

// NewBuddyPhysMem creates a machine whose frames are managed by the buddy
// allocator rather than the seed's LIFO stack: AllocContig can return
// aligned, physically contiguous extents, AllocN prefers contiguity
// opportunistically, and freed frames coalesce so contiguity recovers
// after churn.  The Alloc/AllocN/Free surface is unchanged; on a fresh
// machine single-page Alloc hands out the same frame sequence the LIFO
// pool did.
func NewBuddyPhysMem(frames int, backed bool) *PhysMem {
	return NewBuddyPhysMemNUMA(frames, backed, 1)
}

// NewBuddyPhysMemNUMA is NewBuddyPhysMem on a multi-socket machine: frames
// are homed on sockets by contiguous address range (frames/sockets frames
// per socket, the last socket taking the remainder) and every socket gets
// its own buddy free lists covering exactly its range.  Socket-preferring
// allocation (AllocOn and friends) drains the caller's home lists before
// spilling; sockets=1 is exactly NewBuddyPhysMem.
func NewBuddyPhysMemNUMA(frames int, backed bool, sockets int) *PhysMem {
	if frames <= 0 {
		panic("vm: NewBuddyPhysMem with no frames")
	}
	if sockets < 1 {
		sockets = 1
	}
	if sockets > frames {
		sockets = frames
	}
	pm := &PhysMem{
		pages:      make([]atomic.Pointer[Page], frames),
		backed:     backed,
		buddy:      true,
		orders:     make([][]orderHeap, sockets),
		freeBySock: make([]int, sockets),
		sockets:    sockets,
		framesPer:  frames / sockets,
	}
	for i := range pm.pages {
		p := &Page{UserColor: -1, id: uint64(i + 1)}
		p.frame.Store(uint64(i + 1))
		pm.pages[i].Store(p)
	}
	pm.buildCoverLocked()
	return pm
}

// buildCoverLocked covers each socket's range — and, on a tiered pool,
// each tier sub-range within it — with maximal aligned blocks (frame 0 is
// the sentinel and is never part of any block).  Because the cover is
// built per socket and per tier, no free block ever straddles a socket or
// tier boundary.  Caller holds pm.mu (or owns the pool exclusively during
// construction); the pool must be fully free.
func (pm *PhysMem) buildCoverLocked() {
	pm.freePages = 0
	pm.freeFast = make([]int, pm.sockets)
	for s := 0; s < pm.sockets; s++ {
		pm.orders[s] = make([]orderHeap, MaxContigOrder+1)
		pm.freeBySock[s] = 0
		lo, hi := pm.socketRange(s)
		bounds := []uint64{lo}
		if pm.fastPer > 0 && uint64(pm.fastPer) <= hi-lo {
			bounds = append(bounds, lo+uint64(pm.fastPer))
		}
		bounds = append(bounds, hi+1)
		for bi := 0; bi+1 < len(bounds); bi++ {
			sublo, subhi := bounds[bi], bounds[bi+1]-1
			for start := sublo; start <= subhi; {
				k := MaxContigOrder
				for k > 0 && (start&(1<<k-1) != 0 || start+1<<k-1 > subhi) {
					k--
				}
				pm.orders[s][k].push(start)
				pm.freePages += 1 << k
				pm.freeBySock[s] += 1 << k
				pm.tierFreeDelta(s, start, 1<<k)
				start += 1 << k
			}
		}
	}
}

// Buddy reports whether this pool is buddy-managed (AllocContig can
// succeed and freed frames coalesce) rather than a LIFO stack.
func (pm *PhysMem) Buddy() bool { return pm.buddy }

// MaxContig returns the widest contiguous extent one AllocContig call can
// return on this pool, or 0 for LIFO pools.
func (pm *PhysMem) MaxContig() int {
	if !pm.buddy {
		return 0
	}
	return MaxContigPages
}

// Sockets returns the number of sockets frames are homed across (1 on a
// flat machine).
func (pm *PhysMem) Sockets() int { return pm.sockets }

// SocketOfFrame returns the home socket of the given frame: the socket
// whose address range contains it.  Frame 0 (the "no frame" sentinel) and
// one-socket pools report socket 0.
func (pm *PhysMem) SocketOfFrame(f uint64) int {
	if pm.sockets <= 1 || f == 0 {
		return 0
	}
	s := int((f - 1) / uint64(pm.framesPer))
	if s >= pm.sockets {
		s = pm.sockets - 1
	}
	return s
}

// socketRange returns the inclusive frame range homed on socket s.  The
// last socket absorbs the remainder when frames does not divide evenly.
func (pm *PhysMem) socketRange(s int) (lo, hi uint64) {
	lo = uint64(s*pm.framesPer) + 1
	hi = uint64((s + 1) * pm.framesPer)
	if s == pm.sockets-1 {
		hi = uint64(len(pm.pages))
	}
	return lo, hi
}

// HomeSockets installs an address-range socket homing on a LIFO pool so
// SocketOfFrame answers consistently with what a buddy pool of the same
// geometry would say.  The LIFO free stack itself stays flat — only the
// homing metadata changes, so figure-reproduction kernels keep their exact
// allocation order.  On a buddy pool the partition is fixed at
// construction: asking for the same count is a no-op and anything else
// panics (rebuilding the per-socket heaps mid-flight would scramble the
// free lists).
func (pm *PhysMem) HomeSockets(sockets int) {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > len(pm.pages) {
		sockets = len(pm.pages)
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.buddy {
		if sockets != pm.sockets {
			panic("vm: HomeSockets on a buddy pool; pass sockets to NewBuddyPhysMemNUMA instead")
		}
		return
	}
	pm.sockets = sockets
	pm.framesPer = len(pm.pages) / sockets
}

// eachSocketFrom visits sockets in allocation-preference order: pref first
// (when valid), then the rest ascending.  fn returns false to stop.  With
// pref < 0 the visit is plain ascending, which — because socket ranges
// ascend by address — preserves the flat allocator's global
// lowest-frame-first order.  Caller holds pm.mu.
func (pm *PhysMem) eachSocketFrom(pref int, fn func(s int) bool) {
	if pref >= 0 && pref < pm.sockets {
		if !fn(pref) {
			return
		}
	}
	for s := 0; s < pm.sockets; s++ {
		if s == pref {
			continue
		}
		if !fn(s) {
			return
		}
	}
}

// countHomeLocked records where a socket-preferring allocation was served
// from: n pages from the preferred socket count as NUMA-local, anything
// else as spill.  Socket-agnostic allocations (pref < 0) and one-socket
// pools don't move the gauges.  Caller holds pm.mu.
func (pm *PhysMem) countHomeLocked(pref, served, n int) {
	if pm.sockets <= 1 || pref < 0 {
		return
	}
	if served == pref {
		pm.numaLocal += uint64(n)
	} else {
		pm.numaSpill += uint64(n)
	}
}

// orderFor returns the smallest order whose blocks hold at least n frames.
func orderFor(n int) int {
	return bits.Len(uint(n - 1))
}

// SetReservation installs per-socket reservation watermarks: while a
// socket's stock of intact order>=order blocks covers at most lowWater
// aligned order-sized spans, single-page service (Alloc/AllocN) steers to
// sub-reservation blocks and splits a protected block only when no smaller
// block is free anywhere — the FreeBSD-reservation-style defense that keeps
// the last superpage-capable blocks intact for AllocContig under sustained
// churn.  order<=0 (or a LIFO pool) disables the reservation.  AllocContig
// itself is never steered: consuming spans is its purpose.
func (pm *PhysMem) SetReservation(order, lowWater int) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.buddy || order <= 0 || order > MaxContigOrder || lowWater <= 0 {
		pm.reservOrder, pm.reservLow = 0, 0
		return
	}
	pm.reservOrder, pm.reservLow = order, lowWater
}

// Reservation returns the active reservation (order, lowWater); both zero
// when disabled.
func (pm *PhysMem) Reservation() (order, lowWater int) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.reservOrder, pm.reservLow
}

// spanStockLocked counts socket s's intact reserved spans: each free block
// of order k >= reservOrder holds 1<<(k-reservOrder) aligned spans.
// Caller holds pm.mu; reservOrder > 0.
func (pm *PhysMem) spanStockLocked(s int) int {
	stock := 0
	for k := pm.reservOrder; k <= MaxContigOrder; k++ {
		stock += pm.orders[s][k].len() << (k - pm.reservOrder)
	}
	return stock
}

// protectedLocked reports whether socket s's reserved stock is at or below
// the watermark, so single-page service must avoid order>=reservOrder
// blocks while any smaller block exists.  Caller holds pm.mu.
func (pm *PhysMem) protectedLocked(s int) bool {
	return pm.reservOrder > 0 && pm.spanStockLocked(s) <= pm.reservLow
}

// pickLowestLocked finds the lowest-addressed free block on socket s.
// maxOrder > 0 restricts the scan to orders below it (the reservation
// steering form); maxOrder <= 0 scans every order.  Free blocks partition
// the socket's free space, so the minimum of the per-order heap tops is
// its lowest eligible free frame.  Returns order -1 when no eligible block
// exists.  Caller holds pm.mu.
func (pm *PhysMem) pickLowestLocked(s, maxOrder int) (start uint64, order int) {
	order = -1
	lim := len(pm.orders[s])
	if maxOrder > 0 && maxOrder < lim {
		lim = maxOrder
	}
	for k := 0; k < lim; k++ {
		if pm.orders[s][k].len() == 0 {
			continue
		}
		if b := pm.orders[s][k].starts[0]; order < 0 || b < start {
			start, order = b, k
		}
	}
	return start, order
}

// takeBlockLocked removes and returns the lowest-addressed free block of
// order k homed on socket s, splitting the smallest sufficient larger
// block when order k is empty.  Caller holds pm.mu.
func (pm *PhysMem) takeBlockLocked(s, k int) (uint64, bool) {
	j := k
	for j <= MaxContigOrder && pm.orders[s][j].len() == 0 {
		j++
	}
	if j > MaxContigOrder {
		return 0, false
	}
	start := pm.orders[s][j].popMin()
	for ; j > k; j-- {
		pm.orders[s][j-1].push(start + 1<<(j-1))
		pm.splits++
	}
	pm.freePages -= 1 << k
	pm.freeBySock[s] -= 1 << k
	pm.tierFreeDelta(s, start, -(1 << k))
	return start, true
}

// insertBlockLocked frees the block [start, start+1<<k) with address-
// sorted coalescing: while the block's buddy (the unique same-sized
// neighbor at start^size) is also free, the pair merges one order up.
// The block's home socket is derived from its start frame; since blocks
// never straddle socket boundaries and the buddy probe only consults the
// home socket's heaps, merges never cross a boundary either.  Tier
// boundaries share a socket's heaps, so merging across one is refused
// explicitly: both halves are tier-pure, so comparing start-frame tiers
// suffices.  Caller holds pm.mu.
func (pm *PhysMem) insertBlockLocked(start uint64, k int) {
	s := pm.SocketOfFrame(start)
	pm.freePages += 1 << k
	pm.freeBySock[s] += 1 << k
	pm.tierFreeDelta(s, start, 1<<k)
	for k < MaxContigOrder {
		buddy := start ^ (1 << k)
		if pm.fastPer > 0 && pm.TierOfFrame(buddy) != pm.TierOfFrame(start) {
			break
		}
		if !pm.orders[s][k].remove(buddy) {
			break
		}
		pm.coalesces++
		if buddy < start {
			start = buddy
		}
		k++
	}
	pm.orders[s][k].push(start)
}

// freeRangeLocked frees the frame range [start, start+n) as maximal
// aligned blocks, clipped so no block straddles a socket or tier
// boundary.  Caller holds pm.mu.
func (pm *PhysMem) freeRangeLocked(start uint64, n int) {
	for n > 0 {
		k := bits.TrailingZeros64(start)
		if k > MaxContigOrder {
			k = MaxContigOrder
		}
		for 1<<k > n {
			k--
		}
		for k > 0 && (pm.SocketOfFrame(start+1<<k-1) != pm.SocketOfFrame(start) ||
			pm.TierOfFrame(start+1<<k-1) != pm.TierOfFrame(start)) {
			k--
		}
		pm.insertBlockLocked(start, k)
		start += 1 << k
		n -= 1 << k
	}
}

// takePageLocked materializes the page for frame f as allocated: backing
// storage on first touch, user color reset.  Caller holds pm.mu and has
// already removed the frame from the free structures.
func (pm *PhysMem) takePageLocked(f uint64) *Page {
	p := pm.pages[f-1].Load()
	if pm.backed && p.data == nil {
		p.data = make([]byte, PageSize)
	}
	p.UserColor = -1
	return p
}

// takeOneAtLocked removes the single frame best from the order-bestK free
// block holding it on socket s, splitting the block down.  Caller holds
// pm.mu and has located the block via pickLowestLocked.
func (pm *PhysMem) takeOneAtLocked(s int, best uint64, bestK int) *Page {
	pm.orders[s][bestK].remove(best)
	for j := bestK; j > 0; j-- {
		pm.orders[s][j-1].push(best + 1<<(j-1))
		pm.splits++
	}
	pm.freePages--
	pm.freeBySock[s]--
	pm.tierFreeDelta(s, best, -1)
	return pm.takePageLocked(best)
}

// buddyAllocOneLocked allocates the lowest-addressed free page on the
// preferred socket (falling through the rest ascending when it is
// drained), splitting the block that holds it.  Address-ordered
// allocation keeps single-page churn compacted at the bottom of each
// socket's range (higher blocks stay whole for AllocContig) and makes a
// fresh machine hand out frames 1, 2, 3, ... — the exact sequence the
// LIFO stack produced.  pref < 0 means no preference.
//
// Reservation steering: on a socket whose reserved stock is at the
// watermark the scan is restricted to sub-reservation blocks
// (ReservSteers counts picks the restriction actually changed); a socket
// whose free space is ONLY protected blocks is passed over.  If the whole
// pass comes up empty while frames remain free, a second unrestricted
// pass splits a protected block and counts ReservSpills — the explicit
// spill when small blocks are truly exhausted.  Caller holds pm.mu.
func (pm *PhysMem) buddyAllocOneLocked(pref int) (*Page, error) {
	var pg *Page
	served := -1
	pm.eachSocketFrom(pref, func(s int) bool {
		if pm.freeBySock[s] == 0 {
			return true
		}
		best, bestK := pm.pickLowestLocked(s, 0)
		if pm.protectedLocked(s) && bestK >= pm.reservOrder {
			sb, sk := pm.pickLowestLocked(s, pm.reservOrder)
			if sk < 0 {
				return true // only protected blocks here; try elsewhere
			}
			best, bestK = sb, sk
			pm.reservSteers++
		}
		pg = pm.takeOneAtLocked(s, best, bestK)
		served = s
		return false
	})
	if pg == nil && pm.freePages > 0 {
		// Every free frame sits in a protected block: spill explicitly.
		pm.eachSocketFrom(pref, func(s int) bool {
			if pm.freeBySock[s] == 0 {
				return true
			}
			best, bestK := pm.pickLowestLocked(s, 0)
			pg = pm.takeOneAtLocked(s, best, bestK)
			served = s
			pm.reservSpills++
			return false
		})
	}
	if pg == nil {
		return nil, ErrNoMemory
	}
	pm.countHomeLocked(pref, served, 1)
	pm.allocs.Add(1)
	return pg, nil
}

// buddyAllocNLocked allocates n pages by address-ordered gather within
// each visited socket: take the lowest-addressed free block whole while
// it fits, and carve only the block that straddles the remaining need.
// The preferred socket is drained first; a shortfall spills to the other
// sockets ascending (counted in the NUMA gauges).  On a fresh (or fully
// coalesced) machine the free space is one contiguous span from the
// lowest free frame, so the socket-agnostic gather is a physically
// contiguous ascending extent — frames 1..n on a fresh boot, exactly the
// LIFO pool's sequence — which is what makes AllocN promotion-aware.
// Under fragmentation the gather consumes the low-address fragments churn
// leaves behind before it reaches (and splits) the intact high blocks,
// so routine scattered demand does not cannibalize the superpage-
// capable stock AllocContig depends on.  Caller holds pm.mu.
// Reservation steering applies as in buddyAllocOneLocked: at the
// watermark the gather is restricted to sub-reservation blocks (counted
// once per restricted gather in ReservSteers) and moves on when a socket
// has only protected blocks left; a shortfall after the restricted pass
// finishes from protected blocks in a second pass, counted once in
// ReservSpills.
func (pm *PhysMem) buddyAllocNLocked(pref, n int) ([]*Page, error) {
	if pm.freePages < n {
		return nil, ErrNoMemory
	}
	out := make([]*Page, 0, n)
	local := 0
	steered := false
	gather := func(s int, restricted bool) {
		for len(out) < n && pm.freeBySock[s] > 0 {
			maxOrder := 0
			if restricted && pm.protectedLocked(s) {
				maxOrder = pm.reservOrder
			}
			best, bestK := pm.pickLowestLocked(s, maxOrder)
			if bestK < 0 {
				return // only protected blocks left on this socket
			}
			if maxOrder > 0 && !steered {
				if _, uk := pm.pickLowestLocked(s, 0); uk >= pm.reservOrder {
					steered = true
					pm.reservSteers++
				}
			}
			pm.orders[s][bestK].remove(best)
			size := 1 << bestK
			pm.freePages -= size
			pm.freeBySock[s] -= size
			pm.tierFreeDelta(s, best, -size)
			if need := n - len(out); size <= need {
				for f := best; f < best+uint64(size); f++ {
					out = append(out, pm.takePageLocked(f))
				}
			} else {
				out = append(out, pm.carveLocked(best, bestK, need)...)
			}
		}
	}
	pm.eachSocketFrom(pref, func(s int) bool {
		gather(s, true)
		if s == pref {
			local = len(out)
		}
		return len(out) < n
	})
	if len(out) < n {
		// Small blocks are exhausted everywhere; finish from the protected
		// stock explicitly.
		pm.reservSpills++
		pm.eachSocketFrom(pref, func(s int) bool {
			before := len(out)
			gather(s, false)
			if s == pref {
				local += len(out) - before
			}
			return len(out) < n
		})
	}
	pm.countHomeLocked(pref, pref, local)
	pm.countHomeLocked(pref, -1, n-local)
	pm.allocs.Add(uint64(n))
	return out, nil
}

// carveLocked turns the first n frames of the order-k block at start into
// allocated pages and frees the tail back.  Caller holds pm.mu; the block
// has been taken (takeBlockLocked) already.
func (pm *PhysMem) carveLocked(start uint64, k, n int) []*Page {
	out := make([]*Page, 0, n)
	for f := start; f < start+uint64(n); f++ {
		out = append(out, pm.takePageLocked(f))
	}
	if tail := 1<<k - n; tail > 0 {
		pm.freeRangeLocked(start+uint64(n), tail)
	}
	return out
}

// AllocContig allocates n physically contiguous pages whose first frame
// is aligned to align (a power of two; 1 or 0 means no constraint), in
// ascending frame order.  Subsystems that need superpage-eligible extents
// — the sharded engine's aligned run windows, amd64 direct-map windows,
// memory-disk pools — ask here; when fragmentation has consumed every
// covering block (or the pool is a LIFO pool) it returns ErrNoContig and
// the caller falls back to AllocN's scattered pages.
func (pm *PhysMem) AllocContig(n, align int) ([]*Page, error) {
	return pm.AllocContigOn(-1, n, align)
}

// AllocContigOn is AllocContig preferring a block homed on the given
// socket, spilling to the other sockets' lists ascending when the
// preferred one has no covering block.  A contiguous extent never spans
// sockets (blocks don't straddle the boundary), so the whole extent is
// local or the whole extent is spill.  socket < 0 (or a one-socket pool)
// is exactly AllocContig.
func (pm *PhysMem) AllocContigOn(socket, n, align int) ([]*Page, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vm: AllocContig of %d pages", n)
	}
	if align <= 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		return nil, fmt.Errorf("vm: AllocContig alignment %d is not a power of two", align)
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.buddy || n > MaxContigPages || align > MaxContigPages {
		// No fragmentation gauge moves here: a LIFO pool (or an over-wide
		// request) is refused by construction, not by fragmentation, and
		// PhysStats documents the buddy counters as zero on LIFO pools.
		if pm.buddy {
			pm.contigFails++
		}
		return nil, ErrNoContig
	}
	// A block of order k >= max(orderFor(n), log2(align)) starts on a
	// multiple of its own size, so it satisfies both constraints at once.
	k := orderFor(n)
	if ak := orderFor(align); ak > k {
		k = ak
	}
	var start uint64
	served := -1
	pm.eachSocketFrom(socket, func(s int) bool {
		if got, ok := pm.takeBlockLocked(s, k); ok {
			start, served = got, s
			return false
		}
		return true
	})
	if served < 0 {
		pm.contigFails++
		if pm.freePages < n {
			return nil, ErrNoMemory
		}
		return nil, ErrNoContig
	}
	out := pm.carveLocked(start, k, n)
	pm.countHomeLocked(socket, served, n)
	pm.contigAllocs++
	pm.allocs.Add(uint64(n))
	return out, nil
}

// PhysStats is a point-in-time fragmentation picture of a physical pool.
type PhysStats struct {
	// Frames and FreeFrames are the pool size and current free count.
	Frames     int
	FreeFrames int
	// Buddy reports the allocator mode; the fields below it are zero on
	// LIFO pools except LargestFreeExtent, which is computed either way.
	Buddy bool
	// FreeBlocks counts free blocks per order (index = order, block size
	// 1<<order frames), aggregated across sockets; the shape of
	// fragmentation.
	FreeBlocks []int
	// LargestFreeExtent is the longest physically contiguous free frame
	// run in pages — adjacency across block boundaries included, so it can
	// exceed the largest block.  It is what bounds the biggest extent any
	// sequence of AllocContig calls could reassemble.
	LargestFreeExtent int
	// Splits and Coalesces count block splits on allocation and buddy
	// merges on free; their ratio over time is the churn the allocator
	// absorbed while keeping contiguity recoverable.
	Splits    uint64
	Coalesces uint64
	// ContigAllocs and ContigFails count AllocContig calls that returned
	// an extent vs. calls refused for want of a covering block.
	ContigAllocs uint64
	ContigFails  uint64
	// ReservSteers counts single-page allocations the reservation watermark
	// redirected away from a protected block; ReservSpills counts
	// allocations that had to split a protected block because no smaller
	// block was free anywhere.  Zero while no reservation is installed.
	ReservSteers uint64
	ReservSpills uint64
	// Allocs and Frees are the cumulative page counts.
	Allocs uint64
	Frees  uint64
	// Sockets is the homing partition width; FreeBySocket the free count
	// per socket (nil on LIFO pools, which have no per-socket lists).
	Sockets      int
	FreeBySocket []int
	// NUMALocalPages and NUMASpillPages count pages served by
	// socket-preferring allocations from the preferred socket vs. spilled
	// to another; always zero on one-socket pools.
	NUMALocalPages uint64
	NUMASpillPages uint64
	// Tiered reports whether a fast/slow tier split is installed
	// (SetTierSplit); FastPerSocket is the per-socket fast prefix width.
	// FastFrames/SlowFrames are the tier capacities and FastFree/SlowFree
	// the current free counts; on a single-tier pool every frame counts as
	// fast.
	Tiered        bool
	FastPerSocket int
	FastFrames    int
	SlowFrames    int
	FastFree      int
	SlowFree      int
}

// PhysStats snapshots the pool's fragmentation statistics.
func (pm *PhysMem) PhysStats() PhysStats {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	s := PhysStats{
		Frames:         len(pm.pages),
		Buddy:          pm.buddy,
		Splits:         pm.splits,
		Coalesces:      pm.coalesces,
		ContigAllocs:   pm.contigAllocs,
		ContigFails:    pm.contigFails,
		ReservSteers:   pm.reservSteers,
		ReservSpills:   pm.reservSpills,
		Allocs:         pm.allocs.Load(),
		Frees:          pm.frees.Load(),
		Sockets:        pm.sockets,
		NUMALocalPages: pm.numaLocal,
		NUMASpillPages: pm.numaSpill,
		Tiered:         pm.fastPer > 0,
		FastPerSocket:  pm.fastPer,
		FastFrames:     pm.TierFrames(TierFast),
		SlowFrames:     pm.TierFrames(TierSlow),
		FastFree:       pm.tierFreeLocked(TierFast),
		SlowFree:       pm.tierFreeLocked(TierSlow),
	}
	var extents []extent
	if pm.buddy {
		s.FreeFrames = pm.freePages
		s.FreeBySocket = append([]int(nil), pm.freeBySock...)
		s.FreeBlocks = make([]int, MaxContigOrder+1)
		for sock := range pm.orders {
			for k := range pm.orders[sock] {
				s.FreeBlocks[k] += pm.orders[sock][k].len()
				for _, start := range pm.orders[sock][k].starts {
					extents = append(extents, extent{start, 1 << k})
				}
			}
		}
	} else {
		s.FreeFrames = len(pm.free)
		for _, p := range pm.free {
			extents = append(extents, extent{p.Frame(), 1})
		}
	}
	s.LargestFreeExtent = largestExtent(extents)
	return s
}

type extent struct {
	start uint64
	n     int
}

// largestExtent merges adjacent free extents and returns the longest
// contiguous run in pages.
func largestExtent(extents []extent) int {
	if len(extents) == 0 {
		return 0
	}
	sort.Slice(extents, func(i, j int) bool { return extents[i].start < extents[j].start })
	best, cur := 0, extents[0]
	for _, e := range extents[1:] {
		if e.start == cur.start+uint64(cur.n) {
			cur.n += e.n
			continue
		}
		if cur.n > best {
			best = cur.n
		}
		cur = e
	}
	if cur.n > best {
		best = cur.n
	}
	return best
}
