package vm

import (
	"errors"
	"math/rand"
	"testing"
)

// checkBuddyInvariants asserts the structural invariants of the buddy
// free lists: blocks are aligned to their size, in range, non-overlapping,
// and their page total matches the free counter.
func checkBuddyInvariants(t *testing.T, pm *PhysMem) {
	t.Helper()
	pm.mu.Lock()
	defer pm.mu.Unlock()
	covered := make(map[uint64]bool)
	total := 0
	for sock := range pm.orders {
		sockTotal := 0
		for k := range pm.orders[sock] {
			for _, start := range pm.orders[sock][k].starts {
				size := uint64(1) << k
				if start%size != 0 {
					t.Fatalf("order-%d block at %d is not size-aligned", k, start)
				}
				if start == 0 || start+size-1 > uint64(len(pm.pages)) {
					t.Fatalf("order-%d block at %d out of range", k, start)
				}
				if pm.SocketOfFrame(start) != sock || pm.SocketOfFrame(start+size-1) != sock {
					t.Fatalf("order-%d block at %d straddles or escapes socket %d", k, start, sock)
				}
				for f := start; f < start+size; f++ {
					if covered[f] {
						t.Fatalf("frame %d covered by two free blocks", f)
					}
					covered[f] = true
				}
				sockTotal += int(size)
			}
		}
		if sockTotal != pm.freeBySock[sock] {
			t.Fatalf("socket %d free blocks cover %d pages, counter says %d", sock, sockTotal, pm.freeBySock[sock])
		}
		total += sockTotal
	}
	if total != pm.freePages {
		t.Fatalf("free blocks cover %d pages, counter says %d", total, pm.freePages)
	}
}

func TestBuddyFreshAllocSequenceMatchesLIFO(t *testing.T) {
	const frames = 300
	lifo := NewPhysMem(frames, false)
	bud := NewBuddyPhysMem(frames, false)
	for i := 0; i < frames; i++ {
		a, err := lifo.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		b, err := bud.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if a.Frame() != b.Frame() {
			t.Fatalf("alloc %d: lifo frame %d, buddy frame %d — fresh-boot sequences must match", i, a.Frame(), b.Frame())
		}
	}
	if _, err := bud.Alloc(); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("exhausted buddy alloc = %v, want ErrNoMemory", err)
	}
}

func TestBuddyAllocContigAlignmentAndOrder(t *testing.T) {
	pm := NewBuddyPhysMem(4096, true)
	for _, tc := range []struct{ n, align int }{
		{1, 1}, {3, 1}, {16, 16}, {100, 128}, {512, 512},
	} {
		pages, err := pm.AllocContig(tc.n, tc.align)
		if err != nil {
			t.Fatalf("AllocContig(%d, %d): %v", tc.n, tc.align, err)
		}
		if len(pages) != tc.n {
			t.Fatalf("AllocContig(%d, %d) returned %d pages", tc.n, tc.align, len(pages))
		}
		if pages[0].Frame()%uint64(tc.align) != 0 {
			t.Fatalf("AllocContig(%d, %d) start frame %d not aligned", tc.n, tc.align, pages[0].Frame())
		}
		for i, pg := range pages {
			if pg.Frame() != pages[0].Frame()+uint64(i) {
				t.Fatalf("AllocContig(%d, %d) page %d frame %d breaks contiguity", tc.n, tc.align, i, pg.Frame())
			}
			if pg.Data() == nil {
				t.Fatal("backed AllocContig page has no storage")
			}
		}
		checkBuddyInvariants(t, pm)
		for _, pg := range pages {
			pm.Free(pg)
		}
	}
	checkBuddyInvariants(t, pm)
	if _, err := pm.AllocContig(8, 3); err == nil {
		t.Fatal("non-power-of-two alignment must be rejected")
	}
	if _, err := pm.AllocContig(MaxContigPages+1, 1); !errors.Is(err, ErrNoContig) {
		t.Fatalf("over-wide AllocContig = %v, want ErrNoContig", err)
	}
}

func TestAllocContigOnLIFOPoolRefuses(t *testing.T) {
	pm := NewPhysMem(64, false)
	if _, err := pm.AllocContig(4, 1); !errors.Is(err, ErrNoContig) {
		t.Fatalf("LIFO AllocContig = %v, want ErrNoContig", err)
	}
	if pm.Buddy() || pm.MaxContig() != 0 {
		t.Fatal("LIFO pool must report Buddy()=false, MaxContig()=0")
	}
}

func TestBuddyContigFailsUnderFragmentationThenRecovers(t *testing.T) {
	pm := NewBuddyPhysMem(256, false)
	all, err := pm.AllocN(256)
	if err != nil {
		t.Fatal(err)
	}
	// Free every other page: no two adjacent frames free, so no order>=1
	// block can exist and contiguity is gone.
	for i := 0; i < len(all); i += 2 {
		pm.Free(all[i])
	}
	checkBuddyInvariants(t, pm)
	if _, err := pm.AllocContig(2, 1); !errors.Is(err, ErrNoContig) {
		t.Fatalf("fragmented AllocContig = %v, want ErrNoContig", err)
	}
	// Scattered AllocN must still serve from the fragments.
	scattered, err := pm.AllocN(64)
	if err != nil {
		t.Fatalf("fragmented AllocN: %v", err)
	}
	for _, pg := range scattered {
		pm.Free(pg)
	}
	// Freeing the other half coalesces everything back: contiguity is a
	// renewable resource, which is the whole point of the buddy refactor.
	for i := 1; i < len(all); i += 2 {
		pm.Free(all[i])
	}
	checkBuddyInvariants(t, pm)
	st := pm.PhysStats()
	if st.Coalesces == 0 {
		t.Fatal("coalesce counter never moved")
	}
	if st.LargestFreeExtent != 256 {
		t.Fatalf("largest free extent = %d after full drain, want 256", st.LargestFreeExtent)
	}
	pages, err := pm.AllocContig(128, 128)
	if err != nil {
		t.Fatalf("post-recovery AllocContig: %v", err)
	}
	for _, pg := range pages {
		pm.Free(pg)
	}
}

// TestBuddyChurnCoalescesBack is the fragmentation-churn invariant test:
// a random mix of single, scattered and contiguous allocations freed in
// random order must leave the allocator exactly as coalesced as it
// booted, with the invariants intact at every step.
func TestBuddyChurnCoalescesBack(t *testing.T) {
	const frames = 2048
	pm := NewBuddyPhysMem(frames, false)
	boot := pm.PhysStats()
	rng := rand.New(rand.NewSource(7))
	var held [][]*Page
	for step := 0; step < 4000; step++ {
		if rng.Intn(2) == 0 && pm.FreeFrames() > 64 {
			var pages []*Page
			var err error
			switch rng.Intn(3) {
			case 0:
				var p *Page
				p, err = pm.Alloc()
				pages = []*Page{p}
			case 1:
				pages, err = pm.AllocN(1 + rng.Intn(48))
			default:
				pages, err = pm.AllocContig(1+rng.Intn(48), 1<<rng.Intn(4))
				if errors.Is(err, ErrNoContig) {
					continue
				}
			}
			if err != nil {
				t.Fatal(err)
			}
			held = append(held, pages)
		} else if len(held) > 0 {
			pick := rng.Intn(len(held))
			for _, pg := range held[pick] {
				pm.Free(pg)
			}
			held = append(held[:pick], held[pick+1:]...)
		}
		if step%512 == 0 {
			checkBuddyInvariants(t, pm)
		}
	}
	for _, pages := range held {
		for _, pg := range pages {
			pm.Free(pg)
		}
	}
	checkBuddyInvariants(t, pm)
	st := pm.PhysStats()
	if st.FreeFrames != frames {
		t.Fatalf("free frames = %d after drain, want %d", st.FreeFrames, frames)
	}
	if st.LargestFreeExtent != boot.LargestFreeExtent {
		t.Fatalf("largest free extent = %d after drain, want the boot cover's %d",
			st.LargestFreeExtent, boot.LargestFreeExtent)
	}
	if st.Splits == 0 || st.Coalesces == 0 {
		t.Fatalf("split/coalesce counters = %d/%d, want both > 0", st.Splits, st.Coalesces)
	}
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d after drain", st.Allocs, st.Frees)
	}
	// Contiguity has fully recovered: the widest extent is available again.
	pages, err := pm.AllocContig(MaxContigPages, MaxContigPages)
	if err != nil {
		t.Fatalf("AllocContig after churn drain: %v", err)
	}
	for _, pg := range pages {
		pm.Free(pg)
	}
}

func TestBuddyAllocNPrefersContiguity(t *testing.T) {
	pm := NewBuddyPhysMem(1024, false)
	pages, err := pm.AllocN(100)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range pages {
		if pg.Frame() != pages[0].Frame()+uint64(i) {
			t.Fatalf("fresh AllocN page %d frame %d: want one contiguous extent", i, pg.Frame())
		}
	}
	for _, pg := range pages {
		pm.Free(pg)
	}
}

func TestBuddyFreeZeroesBackedPagesOffTheLock(t *testing.T) {
	pm := NewBuddyPhysMem(4, true)
	ps, err := pm.AllocContig(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ps[0].Data()[7] = 0xAA
	ps[1].Data()[0] = 0xBB
	pm.Free(ps[0])
	pm.Free(ps[1])
	q, err := pm.AllocContig(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q[0].Data()[7] != 0 || q[1].Data()[0] != 0 {
		t.Fatal("recycled buddy pages leaked previous contents")
	}
}

func TestBuddyStatsShape(t *testing.T) {
	pm := NewBuddyPhysMem(96, false)
	st := pm.PhysStats()
	if !st.Buddy || st.Frames != 96 || st.FreeFrames != 96 {
		t.Fatalf("boot stats = %+v", st)
	}
	if st.LargestFreeExtent != 96 {
		t.Fatalf("boot largest extent = %d, want 96", st.LargestFreeExtent)
	}
	if len(st.FreeBlocks) != MaxContigOrder+1 {
		t.Fatalf("FreeBlocks has %d orders", len(st.FreeBlocks))
	}
	if _, err := pm.AllocContig(8, 8); err != nil {
		t.Fatal(err)
	}
	st = pm.PhysStats()
	if st.ContigAllocs != 1 {
		t.Fatalf("ContigAllocs = %d, want 1", st.ContigAllocs)
	}
}

// TestBuddyAllocNSparesLargeBlocks pins the address-ordered gather
// policy: when churn has left scattered fragments below an intact
// superpage-capable block, small AllocN requests must be served from the
// fragments instead of splitting the big block — the failure mode that
// would let routine small allocations destroy the contiguity AllocContig
// exists to recover.
func TestBuddyAllocNSparesLargeBlocks(t *testing.T) {
	pm := NewBuddyPhysMem(3*MaxContigPages, false)
	// Occupy everything below the top maximal block (the boot cover holds
	// 2*MaxContigPages-1 frames there), then free every other page of
	// that span: the free space is ~1024 scattered low singles plus one
	// intact maximal block above them.
	low, err := pm.AllocN(2*MaxContigPages - 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(low); i += 2 {
		pm.Free(low[i])
	}
	before := pm.PhysStats()
	if before.FreeBlocks[MaxContigOrder] != 1 {
		t.Fatalf("setup: %d maximal blocks free, want 1 (blocks %v)",
			before.FreeBlocks[MaxContigOrder], before.FreeBlocks)
	}
	var got []*Page
	for i := 0; i < 64; i++ {
		pages, err := pm.AllocN(2)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pages...)
	}
	if st := pm.PhysStats(); st.FreeBlocks[MaxContigOrder] != 1 {
		t.Fatalf("small AllocN churn split the maximal block: FreeBlocks = %v", st.FreeBlocks)
	}
	// The big block is still there for the contiguity consumer.
	wide, err := pm.AllocContig(MaxContigPages, MaxContigPages)
	if err != nil {
		t.Fatalf("AllocContig after small churn: %v", err)
	}
	for _, pg := range wide {
		pm.Free(pg)
	}
	for _, pg := range got {
		pm.Free(pg)
	}
}

// TestAllocContigLIFOKeepsGaugesZero pins the PhysStats contract: the
// buddy counters stay zero on LIFO pools even when AllocContig is probed.
func TestAllocContigLIFOKeepsGaugesZero(t *testing.T) {
	pm := NewPhysMem(32, false)
	for i := 0; i < 5; i++ {
		if _, err := pm.AllocContig(4, 1); !errors.Is(err, ErrNoContig) {
			t.Fatal("LIFO AllocContig must refuse")
		}
	}
	if st := pm.PhysStats(); st.ContigFails != 0 || st.ContigAllocs != 0 || st.Splits != 0 {
		t.Fatalf("LIFO pool buddy gauges moved: %+v", st)
	}
}
