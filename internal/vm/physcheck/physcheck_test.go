package physcheck

// Table-driven reservation/migration traces: every step of every trace is
// followed by the full invariant battery — structural Audit, temporal
// reservation Checker, and the migration byte Oracle.  The traces drive
// the allocator's own migration primitives (candidates, targets,
// SwapFrames); the mapping layer's migrator is exercised by the sfbuf
// suites on top of the same checks.

import (
	"errors"
	"testing"

	"sfbuf/internal/vm"
)

const span = 512 // pmap.SuperpagePages without the import cycle risk
const spanOrder = 9

// harness owns a trace's pages and runs the checks after every step.
type harness struct {
	t      *testing.T
	pm     *vm.PhysMem
	chk    *Checker
	held   []*vm.Page
	oracle *Oracle
	sig    byte

	contigOK   int
	contigFail int
	moved      int
}

func newHarness(t *testing.T, pm *vm.PhysMem) *harness {
	return &harness{t: t, pm: pm, chk: NewChecker(pm), oracle: NewOracle(nil)}
}

// check runs the invariant battery; step re-snapshots the temporal checker.
func (h *harness) check() {
	h.t.Helper()
	if err := Audit(h.pm); err != nil {
		h.t.Fatal(err)
	}
	if err := h.chk.Step(h.pm); err != nil {
		h.t.Fatal(err)
	}
	if err := h.oracle.Check(h.pm); err != nil {
		h.t.Fatal(err)
	}
}

// hold signs and retains freshly allocated pages and refreshes the oracle.
func (h *harness) hold(pages ...*vm.Page) {
	for _, p := range pages {
		h.sig++
		if d := p.Data(); d != nil {
			d[0], d[7], d[len(d)-1] = h.sig, ^h.sig, h.sig
		}
		h.held = append(h.held, p)
	}
	h.oracle = NewOracle(h.held)
}

func (h *harness) alloc(socket int) {
	h.t.Helper()
	p, err := h.pm.AllocOn(socket)
	if err != nil {
		h.t.Fatal(err)
	}
	h.hold(p)
	h.check()
}

func (h *harness) allocN(n int) {
	h.t.Helper()
	pages, err := h.pm.AllocN(n)
	if err != nil {
		h.t.Fatal(err)
	}
	h.hold(pages...)
	h.check()
}

func (h *harness) contig(n int) {
	h.t.Helper()
	pages, err := h.pm.AllocContig(n, n)
	switch {
	case err == nil:
		h.contigOK++
		h.hold(pages...)
	case errors.Is(err, vm.ErrNoContig) || errors.Is(err, vm.ErrNoMemory):
		h.contigFail++
	default:
		h.t.Fatal(err)
	}
	h.check()
}

// freeExcept frees every held page whose current frame keep rejects.
func (h *harness) freeExcept(keep func(frame uint64) bool) {
	h.t.Helper()
	kept := h.held[:0]
	for _, p := range h.held {
		if keep(p.Frame()) {
			kept = append(kept, p)
			continue
		}
		h.pm.Free(p)
	}
	h.held = kept
	h.oracle = NewOracle(h.held)
	h.check()
}

// migrate evacuates up to blocks candidate spans by the allocator's own
// primitives: copy bytes to a socket-local target outside the span, swap
// frames, free the doomed handle.  The byte oracle stays FIXED across the
// whole pass — migration must not change a single held byte.
func (h *harness) migrate(maxResident, blocks int) {
	h.t.Helper()
	byFrame := make(map[uint64]*vm.Page, len(h.held))
	for _, p := range h.held {
		byFrame[p.Frame()] = p
	}
	for _, cand := range h.pm.MigrationCandidates(span, maxResident, blocks) {
		for _, f := range h.pm.ResidentFrames(cand.Start, cand.Span) {
			src := byFrame[f]
			if src == nil {
				h.t.Fatalf("resident frame %d is not one of ours", f)
			}
			dst, err := h.pm.MigrationTarget(cand.Socket, spanOrder, cand.Start, cand.Start+uint64(cand.Span))
			if err != nil {
				break // no target left: abandon this span
			}
			h.check()
			if !h.pm.MigratePage(src, dst) {
				h.t.Fatalf("MigratePage refused a quiescent resident at frame %d", f)
			}
			delete(byFrame, f)
			byFrame[src.Frame()] = src
			h.pm.Free(dst) // dst now holds the evacuated frame
			h.moved++
			h.check()
		}
	}
}

func TestReservationMigrationTraces(t *testing.T) {
	type step struct {
		op     string // alloc | allocN | contig | freeExcept | migrate
		n      int    // alloc socket / allocN count / contig size / migrate maxResident
		blocks int    // migrate budget
		keep   func(uint64) bool
		repeat int
	}
	cases := []struct {
		name            string
		frames, sockets int
		reservLow       int // 0: no reservation
		script          []step
		verify          func(*testing.T, *vm.PhysMem, *harness)
	}{
		{
			// Boot cover of 1..2048 holds 3 intact spans (one order-9, two in
			// the order-10 block) and 512 sub-span frames.  At lowWater 3 the
			// pool is protected from the start: singles must drain every
			// sub-span frame (the last one by steering around the order-9
			// block), and only then split protected stock — with the spill
			// counted.
			name: "steer-then-spill", frames: 2048, sockets: 1, reservLow: 3,
			script: []step{
				{op: "alloc", n: -1, repeat: 516},
			},
			verify: func(t *testing.T, pm *vm.PhysMem, h *harness) {
				st := pm.PhysStats()
				if st.ReservSteers == 0 {
					t.Errorf("no steer recorded: %+v", st)
				}
				if st.ReservSpills == 0 {
					t.Errorf("no spill recorded after exhausting sub-span frames: %+v", st)
				}
			},
		},
		{
			// The watermark defense in one picture: churn that would have
			// nibbled the last spans gets steered, so AllocContig still
			// succeeds at the end.
			name: "reservation-keeps-contig-alive", frames: 4096, sockets: 1, reservLow: 2,
			script: []step{
				{op: "allocN", n: 2900},
				{op: "freeExcept", keep: func(f uint64) bool { return f%3 == 0 && f < 1024 }},
				{op: "alloc", n: -1, repeat: 600},
				{op: "contig", n: span},
			},
			verify: func(t *testing.T, pm *vm.PhysMem, h *harness) {
				if h.contigOK == 0 {
					t.Errorf("AllocContig failed despite the reservation (fails=%d)", h.contigFail)
				}
			},
		},
		{
			// Scattered residents in every span defeat AllocContig; migration
			// evacuates the nearly-free spans and contiguity comes back, with
			// the byte oracle pinned across every evacuated page.
			name: "migration-restores-contig", frames: 4096, sockets: 1, reservLow: 2,
			script: []step{
				{op: "allocN", n: 4096},
				{op: "freeExcept", keep: func(f uint64) bool {
					return f >= span && f%97 == 5 // a few residents in every span 1..7
				}},
				{op: "contig", n: span},
				{op: "migrate", n: 64, blocks: 4},
				{op: "contig", n: span},
			},
			verify: func(t *testing.T, pm *vm.PhysMem, h *harness) {
				if h.contigFail == 0 {
					t.Error("scattered residents should have defeated the first AllocContig")
				}
				if h.contigOK == 0 {
					t.Errorf("AllocContig still failing after migrating %d pages", h.moved)
				}
				if h.moved == 0 {
					t.Error("migration moved nothing")
				}
			},
		},
		{
			// Two sockets: reservation accounting and migration placement are
			// per socket; Audit additionally proves no block ever straddles
			// the boundary.
			name: "two-socket-trace", frames: 4096, sockets: 2, reservLow: 2,
			script: []step{
				{op: "allocN", n: 3000},
				{op: "freeExcept", keep: func(f uint64) bool { return f%131 == 7 }},
				{op: "alloc", n: 1, repeat: 40},
				{op: "alloc", n: 0, repeat: 40},
				{op: "migrate", n: 64, blocks: 4},
				{op: "contig", n: span},
			},
			verify: func(t *testing.T, pm *vm.PhysMem, h *harness) {
				if h.moved == 0 {
					t.Error("migration moved nothing")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pm := vm.NewBuddyPhysMemNUMA(tc.frames, true, tc.sockets)
			if tc.reservLow > 0 {
				pm.SetReservation(spanOrder, tc.reservLow)
			}
			h := newHarness(t, pm)
			for _, s := range tc.script {
				n := s.repeat
				if n == 0 {
					n = 1
				}
				for i := 0; i < n; i++ {
					switch s.op {
					case "alloc":
						h.alloc(s.n)
					case "allocN":
						h.allocN(s.n)
					case "contig":
						h.contig(s.n)
					case "freeExcept":
						h.freeExcept(s.keep)
					case "migrate":
						h.migrate(s.n, s.blocks)
					default:
						t.Fatalf("unknown op %q", s.op)
					}
				}
			}
			tc.verify(t, pm, h)
			// Drain: everything frees cleanly and the pool audits whole.
			for _, p := range h.held {
				pm.Free(p)
			}
			h.held = nil
			h.oracle = NewOracle(nil)
			h.check()
			if st := pm.PhysStats(); st.FreeFrames != tc.frames {
				t.Fatalf("leak: %d of %d frames free after drain", st.FreeFrames, tc.frames)
			}
		})
	}
}
