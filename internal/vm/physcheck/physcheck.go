// Package physcheck is the contiguity invariant layer for the buddy
// physical allocator: reusable assertions that reservation/migration test
// traces run after EVERY operation.
//
// Three families of checks:
//
//   - Audit: structural free-list invariants — every free block is aligned
//     to its own size, blocks do not overlap, no block straddles a socket
//     boundary, and the blocks sum exactly to the free counters (global
//     and per socket).
//
//   - Checker: the temporal reservation invariant — between two steps, a
//     socket whose intact reserved-span stock was at or below the
//     watermark may lose stock only to an AllocContig (consuming spans is
//     its purpose) or to an explicitly counted spill, and a spill is legal
//     only when no sub-reservation block was free anywhere.  In other
//     words: no reserved-order block is silently split while a smaller
//     block existed.
//
//   - Oracle: the migration byte oracle — a snapshot of mapped pages'
//     bytes and identities; after any number of migrations every page
//     handle must still carry its exact bytes and the frame registry must
//     still resolve the handle's (possibly new) frame back to it.
//
// The checks are error-returning rather than *testing.T-bound so the
// native fuzz targets, the table-driven suites, and the -race stress tests
// can all share them.
package physcheck

import (
	"bytes"
	"fmt"
	"sort"

	"sfbuf/internal/vm"
)

// Audit verifies the structural free-list invariants of a buddy pool.
// LIFO pools trivially pass (they have no block geometry to corrupt).
func Audit(pm *vm.PhysMem) error {
	st := pm.PhysStats()
	if !st.Buddy {
		return nil
	}
	blocks := pm.FreeBlocks()
	sum := 0
	bySock := make([]int, st.Sockets)
	for _, b := range blocks {
		size := uint64(1) << b.Order
		if b.Start&(size-1) != 0 {
			return fmt.Errorf("physcheck: block [%d,+%d) misaligned for order %d", b.Start, size, b.Order)
		}
		if b.Start == 0 || b.Start+size-1 > uint64(st.Frames) {
			return fmt.Errorf("physcheck: block [%d,+%d) out of frame range 1..%d", b.Start, size, st.Frames)
		}
		if s := pm.SocketOfFrame(b.Start); s != b.Socket || pm.SocketOfFrame(b.Start+size-1) != b.Socket {
			return fmt.Errorf("physcheck: block [%d,+%d) straddles socket %d's boundary", b.Start, size, b.Socket)
		}
		if st.Tiered && pm.TierOfFrame(b.Start) != pm.TierOfFrame(b.Start+size-1) {
			return fmt.Errorf("physcheck: block [%d,+%d) straddles the tier boundary", b.Start, size)
		}
		sum += int(size)
		bySock[b.Socket] += int(size)
	}
	sorted := append([]vm.FreeBlock(nil), blocks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i := 1; i < len(sorted); i++ {
		prevEnd := sorted[i-1].Start + uint64(1)<<sorted[i-1].Order
		if sorted[i].Start < prevEnd {
			return fmt.Errorf("physcheck: blocks overlap at frame %d", sorted[i].Start)
		}
	}
	if sum != st.FreeFrames {
		return fmt.Errorf("physcheck: free blocks sum to %d frames, counter says %d", sum, st.FreeFrames)
	}
	for s, n := range bySock {
		if s < len(st.FreeBySocket) && n != st.FreeBySocket[s] {
			return fmt.Errorf("physcheck: socket %d blocks sum to %d frames, counter says %d", s, n, st.FreeBySocket[s])
		}
	}
	if st.Tiered {
		fastSum := 0
		for _, b := range blocks {
			if pm.TierOfFrame(b.Start) == vm.TierFast {
				fastSum += 1 << b.Order
			}
		}
		if fastSum != st.FastFree {
			return fmt.Errorf("physcheck: fast-tier blocks sum to %d frames, gauge says %d", fastSum, st.FastFree)
		}
	}
	return nil
}

// Checker carries the between-steps state of the temporal reservation
// invariant.  Create it once the pool (and its reservation) is set up,
// then call Step after every allocator operation.
type Checker struct {
	order, low int
	stock      []int  // intact reserved spans per socket at the last step
	small      int    // free sub-reservation frames anywhere at the last step
	contig     uint64 // ContigAllocs at the last step
	spills     uint64 // ReservSpills at the last step
}

// NewChecker snapshots the pool's reservation state as the baseline.
func NewChecker(pm *vm.PhysMem) *Checker {
	c := &Checker{}
	c.order, c.low = pm.Reservation()
	c.capture(pm)
	return c
}

func (c *Checker) capture(pm *vm.PhysMem) {
	st := pm.PhysStats()
	c.contig, c.spills = st.ContigAllocs, st.ReservSpills
	c.stock = make([]int, st.Sockets)
	c.small = 0
	for _, b := range pm.FreeBlocks() {
		if b.Order >= c.order {
			c.stock[b.Socket] += 1 << (b.Order - c.order)
		} else {
			c.small += 1 << b.Order
		}
	}
}

// Step checks the transition since the previous Step (or NewChecker) and
// re-snapshots.  Exactly one allocator operation should have happened in
// between.
func (c *Checker) Step(pm *vm.PhysMem) error {
	if c.order <= 0 {
		return nil // no reservation installed: nothing temporal to check
	}
	prevStock := c.stock
	prevSmall := c.small
	prevContig, prevSpills := c.contig, c.spills
	c.capture(pm)
	st := pm.PhysStats()
	for s := range prevStock {
		if s >= len(c.stock) || c.stock[s] >= prevStock[s] {
			continue // stock grew or held: nothing to justify
		}
		if prevStock[s] > c.low {
			continue // socket was above the watermark: splitting is legal
		}
		if st.ContigAllocs != prevContig {
			continue // AllocContig consumed it: that is what spans are FOR
		}
		if st.ReservSpills != prevSpills {
			if prevSmall > 0 {
				return fmt.Errorf("physcheck: spill counted on socket %d while %d sub-reservation frames were free", s, prevSmall)
			}
			continue // explicit spill with small blocks truly exhausted
		}
		return fmt.Errorf("physcheck: socket %d's protected stock dropped %d->%d with no AllocContig and no counted spill",
			s, prevStock[s], c.stock[s])
	}
	return nil
}

// Oracle is the migration byte oracle: a snapshot of page handles, their
// bytes, and their registry identity.
type Oracle struct {
	pages []*vm.Page
	data  [][]byte
}

// NewOracle snapshots the given pages.  Pages of an unbacked pool snapshot
// only their identity.
func NewOracle(pages []*vm.Page) *Oracle {
	o := &Oracle{pages: append([]*vm.Page(nil), pages...)}
	o.Update()
	return o
}

// Update re-snapshots the bytes (after an intentional write).
func (o *Oracle) Update() {
	o.data = make([][]byte, len(o.pages))
	for i, p := range o.pages {
		if d := p.Data(); d != nil {
			o.data[i] = append([]byte(nil), d...)
		}
	}
}

// Check verifies that every snapshotted page still carries its exact bytes
// and that the frame registry resolves the page's current frame back to
// the same handle — migration may move a page, never change or orphan it.
func (o *Oracle) Check(pm *vm.PhysMem) error {
	for i, p := range o.pages {
		f := p.Frame()
		if got := pm.PageByFrame(f); got != p {
			return fmt.Errorf("physcheck: page %d's frame %d resolves to a different handle", i, f)
		}
		if o.data[i] != nil && !bytes.Equal(p.Data(), o.data[i]) {
			return fmt.Errorf("physcheck: page %d (frame %d) bytes changed under migration", i, f)
		}
	}
	return nil
}
