package vm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	pm := NewPhysMem(8, true)
	if pm.FreeFrames() != 8 {
		t.Fatalf("free = %d, want 8", pm.FreeFrames())
	}
	p, err := pm.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if p.Frame() == 0 {
		t.Fatal("frame 0 must stay a sentinel")
	}
	if len(p.Data()) != PageSize {
		t.Fatalf("backed page data len = %d", len(p.Data()))
	}
	pm.Free(p)
	if pm.FreeFrames() != 8 {
		t.Fatalf("free = %d after free, want 8", pm.FreeFrames())
	}
}

func TestExhaustion(t *testing.T) {
	pm := NewPhysMem(2, false)
	a, _ := pm.Alloc()
	b, _ := pm.Alloc()
	if _, err := pm.Alloc(); err != ErrNoMemory {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	pm.Free(a)
	pm.Free(b)
}

func TestAllocNAtomicity(t *testing.T) {
	pm := NewPhysMem(4, false)
	if _, err := pm.AllocN(5); err != ErrNoMemory {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	if pm.FreeFrames() != 4 {
		t.Fatalf("failed AllocN leaked pages: free = %d", pm.FreeFrames())
	}
	ps, err := pm.AllocN(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, p := range ps {
		if seen[p.Frame()] {
			t.Fatalf("duplicate frame %d", p.Frame())
		}
		seen[p.Frame()] = true
	}
}

func TestFreeZeroesBackedPages(t *testing.T) {
	pm := NewPhysMem(1, true)
	p, _ := pm.Alloc()
	p.Data()[0] = 0xAA
	pm.Free(p)
	q, _ := pm.Alloc()
	if q.Data()[0] != 0 {
		t.Fatal("recycled page leaked previous contents")
	}
}

func TestWireProtectsFromFree(t *testing.T) {
	pm := NewPhysMem(1, false)
	p, _ := pm.Alloc()
	p.Wire()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("freeing a wired page must panic")
			}
		}()
		pm.Free(p)
	}()
	p.Unwire()
	pm.Free(p)
}

func TestUnwireUnderflowPanics(t *testing.T) {
	pm := NewPhysMem(1, false)
	p, _ := pm.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("unwire of unwired page must panic")
		}
	}()
	p.Unwire()
}

func TestPageByFrame(t *testing.T) {
	pm := NewPhysMem(3, false)
	p, _ := pm.Alloc()
	if pm.PageByFrame(p.Frame()) != p {
		t.Fatal("PageByFrame returned wrong page")
	}
	if pm.PageByFrame(0) != nil {
		t.Fatal("frame 0 must be nil sentinel")
	}
	if pm.PageByFrame(99) != nil {
		t.Fatal("out-of-range frame must be nil")
	}
}

func TestUserMemReadWrite(t *testing.T) {
	pm := NewPhysMem(8, true)
	u, err := AllocUserMem(pm, 3*PageSize+100)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 2*PageSize)
	for i := range src {
		src[i] = byte(i * 7)
	}
	// Straddle page boundaries deliberately.
	if err := u.WriteAt(PageSize/2, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := u.ReadAt(PageSize/2, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("user memory round trip corrupted data")
	}
}

func TestUserMemBounds(t *testing.T) {
	pm := NewPhysMem(2, false)
	u, _ := AllocUserMem(pm, PageSize)
	if err := u.WriteAt(PageSize-1, []byte{1, 2}); err != ErrBounds {
		t.Fatalf("err = %v, want ErrBounds", err)
	}
	if err := u.ReadAt(-1, make([]byte, 1)); err != ErrBounds {
		t.Fatalf("err = %v, want ErrBounds", err)
	}
	if _, _, err := u.PageAt(PageSize); err != ErrBounds {
		t.Fatalf("err = %v, want ErrBounds", err)
	}
}

func TestUserMemWireUnwire(t *testing.T) {
	pm := NewPhysMem(4, false)
	u, _ := AllocUserMem(pm, 3*PageSize)
	if err := u.Wire(PageSize, PageSize*2); err != nil {
		t.Fatal(err)
	}
	if u.Pages()[0].Wired() {
		t.Fatal("page 0 should not be wired")
	}
	if !u.Pages()[1].Wired() || !u.Pages()[2].Wired() {
		t.Fatal("pages 1,2 should be wired")
	}
	if err := u.Unwire(PageSize, PageSize*2); err != nil {
		t.Fatal(err)
	}
	for _, p := range u.Pages() {
		if p.Wired() {
			t.Fatalf("%v still wired", p)
		}
	}
}

func TestUserMemPageRange(t *testing.T) {
	pm := NewPhysMem(4, false)
	u, _ := AllocUserMem(pm, 4*PageSize)
	ps, err := u.PageRange(PageSize+1, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("range spanning two pages returned %d pages", len(ps))
	}
	ps, err = u.PageRange(0, 0)
	if err != nil || ps != nil {
		t.Fatalf("empty range = (%v, %v)", ps, err)
	}
}

// Property: random user-memory writes and reads behave like a flat byte
// array.
func TestQuickUserMemFlatModel(t *testing.T) {
	pm := NewPhysMem(16, true)
	u, err := AllocUserMem(pm, 5*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	model := make([]byte, 5*PageSize)
	rng := rand.New(rand.NewSource(42))
	f := func(off uint16, val byte, n uint8) bool {
		o := int(off) % (len(model) - 256)
		c := int(n)%256 + 1
		buf := make([]byte, c)
		for i := range buf {
			buf[i] = val ^ byte(rng.Intn(256))
		}
		if err := u.WriteAt(o, buf); err != nil {
			return false
		}
		copy(model[o:], buf)
		got := make([]byte, c)
		if err := u.ReadAt(o, got); err != nil {
			return false
		}
		return bytes.Equal(got, model[o:o+c])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPhysMemStats(t *testing.T) {
	pm := NewPhysMem(4, false)
	p, _ := pm.Alloc()
	pm.Free(p)
	a, f := pm.Stats()
	if a != 1 || f != 1 {
		t.Fatalf("stats = (%d,%d), want (1,1)", a, f)
	}
}
