package vm

// Defragmentation-by-migration support: the buddy allocator's side of the
// Migrator (internal/sfbuf/migrate.go).  The allocator owns the free-space
// geometry, so it answers the two placement questions — which
// superpage-span blocks are nearly free enough to be worth evacuating, and
// where should an evacuated page land — and performs the one mutation
// migration needs from the physical layer: rebinding a resident logical
// page to a different frame (SwapFrames) while every holder of the *Page
// keeps its handle.
//
// The honest-TLB contract shapes the frame swap.  A stale TLB entry still
// points at the OLD frame after a migration, and the model must keep
// serving the old bytes from it until the migrator's accumulated shootdown
// flush lands — exactly like real memory, where the source frame retains
// its contents until reclaimed.  The migrator therefore copies the bytes
// into the destination page's storage first (charged per byte), and
// SwapFrames then exchanges the two Page handles' frame numbers and
// registry slots: the resident handle keeps the original storage at its
// new frame, while the doomed handle — now holding the old frame and a
// byte-identical copy — keeps stale translations honest until it is freed
// (which zeroes it, so any access after the flush horizon reads garbage
// and the coherence tests can see the bug).

import (
	"fmt"
	"sort"
)

// FreeBlock describes one free buddy block: 1<<Order frames starting at
// frame Start, homed on Socket.
type FreeBlock struct {
	Start  uint64
	Order  int
	Socket int
}

// FreeBlocks snapshots every free block in the pool, sorted by start
// frame.  Nil on LIFO pools (use PhysStats for their free count).  It is
// the raw material for the physcheck invariant auditor.
func (pm *PhysMem) FreeBlocks() []FreeBlock {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.buddy {
		return nil
	}
	var out []FreeBlock
	for s := range pm.orders {
		for k := range pm.orders[s] {
			for _, start := range pm.orders[s][k].starts {
				out = append(out, FreeBlock{Start: start, Order: k, Socket: s})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// MigrationCandidate is a nearly-free aligned span worth evacuating:
// Resident frames still allocated out of the Span-frame window starting at
// Start (the rest are free fragments that will coalesce into one intact
// block once the residents move out).
type MigrationCandidate struct {
	Start    uint64
	Span     int
	Resident int
	Socket   int
}

// MigrationCandidates finds up to limit aligned spanPages-frame spans with
// 0 < resident <= maxResident allocated frames, cheapest (fewest
// residents, then lowest address) first.  spanPages must be a power of two
// no larger than MaxContigPages.  Span 0 is never a candidate (frame 0 is
// the "no frame" sentinel, so that span can never coalesce whole), and a
// span straddling a socket boundary cannot become one block either.
func (pm *PhysMem) MigrationCandidates(spanPages, maxResident, limit int) []MigrationCandidate {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.buddy || spanPages <= 0 || spanPages&(spanPages-1) != 0 || spanPages > MaxContigPages {
		return nil
	}
	spanOrder := orderFor(spanPages)
	// Free frames per span index, accumulated from sub-span blocks only: a
	// block of order >= spanOrder means its spans are already fully free,
	// and a sub-span block's alignment keeps it inside one span.
	freeIn := make(map[uint64]int)
	for s := range pm.orders {
		for k := 0; k < spanOrder && k < len(pm.orders[s]); k++ {
			for _, start := range pm.orders[s][k].starts {
				freeIn[start/uint64(spanPages)] += 1 << k
			}
		}
	}
	var out []MigrationCandidate
	for span, free := range freeIn {
		resident := spanPages - free
		if span == 0 || resident <= 0 || resident > maxResident {
			continue
		}
		lo := span * uint64(spanPages)
		sock := pm.SocketOfFrame(lo)
		if pm.SocketOfFrame(lo+uint64(spanPages)-1) != sock {
			continue
		}
		out = append(out, MigrationCandidate{Start: lo, Span: spanPages, Resident: resident, Socket: sock})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Resident != out[j].Resident {
			return out[i].Resident < out[j].Resident
		}
		return out[i].Start < out[j].Start
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// ResidentFrames returns the currently allocated frames within
// [start, start+span), ascending — the pages a migrator must evacuate to
// make the span whole.
func (pm *PhysMem) ResidentFrames(start uint64, span int) []uint64 {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.buddy {
		return nil
	}
	free := make(map[uint64]bool, span)
	for s := range pm.orders {
		for k := range pm.orders[s] {
			for _, bs := range pm.orders[s][k].starts {
				size := uint64(1) << k
				if bs+size <= start || bs >= start+uint64(span) {
					continue
				}
				for f := bs; f < bs+size; f++ {
					if f >= start && f < start+uint64(span) {
						free[f] = true
					}
				}
			}
		}
	}
	var out []uint64
	for f := start; f < start+uint64(span); f++ {
		if f == 0 || free[f] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// MigrationTarget allocates one destination page for an evacuation: the
// lowest-addressed free frame on the given socket that sits in a
// sub-spanOrder block outside [avoidLo, avoidHi) — so the destination
// fills an existing fragment (compaction), never breaks an intact span
// block, and never lands inside the span being evacuated.  ErrNoMemory
// means no such frame exists and the caller should abandon this span.
func (pm *PhysMem) MigrationTarget(socket, spanOrder int, avoidLo, avoidHi uint64) (*Page, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.buddy || socket < 0 || socket >= pm.sockets {
		return nil, ErrNoMemory
	}
	bestK := -1
	var best uint64
	lim := spanOrder
	if lim > len(pm.orders[socket]) {
		lim = len(pm.orders[socket])
	}
	for k := 0; k < lim; k++ {
		for _, bs := range pm.orders[socket][k].starts {
			if bs >= avoidLo && bs < avoidHi {
				continue // sub-span blocks are span-contained: skip the victim's
			}
			if bestK < 0 || bs < best {
				best, bestK = bs, k
			}
		}
	}
	if bestK < 0 {
		return nil, ErrNoMemory
	}
	pg := pm.takeOneAtLocked(socket, best, bestK)
	pm.allocs.Add(1)
	return pg, nil
}

// SwapFrames exchanges the physical frames backing pages a and b: each
// handle keeps its storage, wire count, and color but answers with the
// other's frame number, and the frame registry is rebound to match.  Both
// pages must be allocated (the caller owns them); the migrator pairs a
// resident page with a freshly allocated destination whose storage it has
// already filled with the resident's bytes.
func (pm *PhysMem) SwapFrames(a, b *Page) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.swapFramesLocked(a, b)
}

func (pm *PhysMem) swapFramesLocked(a, b *Page) {
	if a == b {
		return
	}
	fa, fb := a.frame.Load(), b.frame.Load()
	if fa == 0 || fb == 0 || fa > uint64(len(pm.pages)) || fb > uint64(len(pm.pages)) {
		panic(fmt.Sprintf("vm: SwapFrames of unregistered frames %d, %d", fa, fb))
	}
	pm.pages[fa-1].Store(b)
	pm.pages[fb-1].Store(a)
	a.frame.Store(fb)
	b.frame.Store(fa)
}

// frameFreeLocked reports whether frame f currently sits inside some free
// block.  Free blocks are aligned to their own size, so f's covering block
// at order k — if free — starts exactly at f with the low k bits cleared;
// one O(1) heap-position probe per order answers the question.  Caller
// holds pm.mu; buddy pools only.
func (pm *PhysMem) frameFreeLocked(f uint64) bool {
	s := pm.SocketOfFrame(f)
	for k := 0; k < len(pm.orders[s]); k++ {
		start := f &^ (uint64(1)<<k - 1)
		if _, ok := pm.orders[s][k].pos[start]; ok {
			return true
		}
	}
	return false
}

// MigratePage is the atomic heart of an evacuation: verify that src still
// backs an allocated, unwired frame, copy its bytes into dst's storage,
// and swap the two handles' frames — all under the pool lock, so a racing
// Free of src cannot interleave with the swap.  On success src answers
// with dst's old frame (same storage, same bytes) and dst holds src's old
// frame with a byte-identical copy, keeping stale TLB entries honest until
// the caller's shootdown flush lands and dst is freed.  Returns false —
// with no state changed — when src was freed or wired since the caller
// chose it; the caller should free dst unswapped and abandon the page.
func (pm *PhysMem) MigratePage(src, dst *Page) bool {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.buddy || src == dst {
		return false
	}
	fs := src.frame.Load()
	if fs == 0 || fs > uint64(len(pm.pages)) || pm.pages[fs-1].Load() != src {
		return false
	}
	if src.Wired() || pm.frameFreeLocked(fs) {
		return false
	}
	if src.data != nil && dst.data != nil {
		copy(dst.data, src.data)
	}
	pm.swapFramesLocked(src, dst)
	return true
}
