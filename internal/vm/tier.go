package vm

// Tiered physical memory.  Production machines are not uniform: beyond the
// NUMA distance between sockets there is a capacity tier — far DRAM,
// CXL-attached or persistent memory — whose bandwidth makes every copy,
// zeroing pass, and checksum over its frames more expensive.  The simulator
// models a two-tier pool as an address split WITHIN each socket's frame
// range: the low fastPer frames of every socket are the fast tier, the
// remainder the slow tier.  Tier membership is therefore a pure function of
// the frame number, which keeps the per-access probe (smp.Context.
// ChargeBytesAt consults SlowFrame on every charged byte range) lock-free
// and O(1), and composes with NUMA homing — a socket-homed allocation can
// still prefer fast frames within its socket.
//
// On a buddy pool the tier boundary behaves exactly like a socket boundary:
// the boot cover is built per tier sub-range, freeRangeLocked clips blocks
// at the boundary, and insertBlockLocked refuses to merge a buddy pair that
// straddles it — so every free block is tier-pure and tier-targeted
// allocation can reason about block start frames alone.  On a LIFO pool the
// split is lookup-only metadata (like HomeSockets): the free stack and its
// exact allocation order are untouched, so figure-reproduction kernels stay
// bit-identical.
//
// fastPer == 0 (the default) is a single uniform tier: every probe answers
// fast, no gauge moves, and the allocator is byte-for-byte the untiered
// build.

// Physical memory tiers.  TierFast is the default tier of every frame on
// an untiered pool.
const (
	TierFast = 0
	TierSlow = 1
)

// SetTierSplit installs a fast/slow tier split: the low fastPer frames of
// each socket's range become the fast tier, the rest the slow tier.
// fastPer <= 0 removes the split (single uniform tier).  On a buddy pool
// the free-block cover is rebuilt per tier sub-range, which requires the
// pool to be fully free — call it at boot, right after construction;
// anything else panics.  On a LIFO pool only the lookup metadata changes,
// preserving the free stack's exact order.
func (pm *PhysMem) SetTierSplit(fastPer int) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if fastPer < 0 {
		fastPer = 0
	}
	if fastPer > pm.framesPer {
		fastPer = pm.framesPer
	}
	pm.fastPer = fastPer
	if pm.buddy {
		if pm.freePages != len(pm.pages) {
			panic("vm: SetTierSplit on a buddy pool with allocations outstanding")
		}
		pm.buildCoverLocked()
	}
}

// Tiered reports whether a fast/slow tier split is installed.
func (pm *PhysMem) Tiered() bool { return pm.fastPer > 0 }

// FastPerSocket returns the per-socket fast-tier prefix width in frames
// (0 on a single-tier pool).
func (pm *PhysMem) FastPerSocket() int { return pm.fastPer }

// TierOfFrame returns the tier housing the given frame.  Frame 0 (the
// "no frame" sentinel) and every frame of an untiered pool report
// TierFast.
func (pm *PhysMem) TierOfFrame(f uint64) int {
	if pm.fastPer <= 0 || f == 0 {
		return TierFast
	}
	s := pm.SocketOfFrame(f)
	lo := uint64(s*pm.framesPer) + 1
	if f < lo+uint64(pm.fastPer) {
		return TierFast
	}
	return TierSlow
}

// SlowFrame reports whether the frame resides in the slow tier — the
// accounting probe ChargeBytesAt runs per charged byte range.  Always
// false on a single-tier pool, where it is one integer compare.
func (pm *PhysMem) SlowFrame(f uint64) bool {
	return pm.fastPer > 0 && f != 0 && pm.TierOfFrame(f) == TierSlow
}

// tierFreeDelta adjusts the per-socket fast-tier free gauge for a
// tier-pure block of frames starting at start.  No-op on a single-tier
// pool.  Caller holds pm.mu.
func (pm *PhysMem) tierFreeDelta(s int, start uint64, frames int) {
	if pm.fastPer > 0 && pm.TierOfFrame(start) == TierFast {
		pm.freeFast[s] += frames
	}
}

// TierFrames returns the total frame capacity of the given tier.  On a
// single-tier pool every frame is fast.
func (pm *PhysMem) TierFrames(tier int) int {
	if pm.fastPer <= 0 {
		if tier == TierFast {
			return len(pm.pages)
		}
		return 0
	}
	fast := 0
	for s := 0; s < pm.sockets; s++ {
		lo, hi := pm.socketRange(s)
		size := int(hi - lo + 1)
		if size > pm.fastPer {
			size = pm.fastPer
		}
		fast += size
	}
	if tier == TierFast {
		return fast
	}
	return len(pm.pages) - fast
}

// TierFreeFrames returns the number of currently free frames in the given
// tier.  Buddy pools answer from the maintained gauge; LIFO pools scan
// their free stack.
func (pm *PhysMem) TierFreeFrames(tier int) int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.tierFreeLocked(tier)
}

func (pm *PhysMem) tierFreeLocked(tier int) int {
	if pm.fastPer <= 0 {
		if tier != TierFast {
			return 0
		}
		if pm.buddy {
			return pm.freePages
		}
		return len(pm.free)
	}
	fast := 0
	if pm.buddy {
		for _, n := range pm.freeFast {
			fast += n
		}
		if tier == TierFast {
			return fast
		}
		return pm.freePages - fast
	}
	for _, p := range pm.free {
		if pm.TierOfFrame(p.Frame()) == TierFast {
			fast++
		}
	}
	if tier == TierFast {
		return fast
	}
	return len(pm.free) - fast
}

// pickLowestTierLocked finds the lowest-addressed free block on socket s
// whose frames lie in the given tier; maxOrder > 0 restricts the scan to
// orders below it.  Fast frames are each socket's low address prefix, so
// for the fast tier the heap top decides per order; the slow tier scans
// heap entries.  Returns order -1 when the tier has no eligible block on
// this socket.  Caller holds pm.mu; buddy pools only.
func (pm *PhysMem) pickLowestTierLocked(s, tier, maxOrder int) (start uint64, order int) {
	order = -1
	lim := len(pm.orders[s])
	if maxOrder > 0 && maxOrder < lim {
		lim = maxOrder
	}
	for k := 0; k < lim; k++ {
		h := &pm.orders[s][k]
		if h.len() == 0 {
			continue
		}
		if tier == TierFast {
			if b := h.starts[0]; pm.TierOfFrame(b) == TierFast && (order < 0 || b < start) {
				start, order = b, k
			}
			continue
		}
		for _, bs := range h.starts {
			if pm.TierOfFrame(bs) != tier {
				continue
			}
			if order < 0 || bs < start {
				start, order = bs, k
			}
		}
	}
	return start, order
}

// AllocTierOn allocates one page from the given tier, preferring frames
// homed on the given socket (pref < 0 means no preference).  On a
// single-tier or LIFO pool the tier is ignored and the call degenerates
// to AllocOn/Alloc.  ErrNoMemory means the tier is exhausted; the caller
// may fall back to the other tier explicitly.
func (pm *PhysMem) AllocTierOn(pref, tier int) (*Page, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.buddy {
		return pm.allocLocked()
	}
	if pm.fastPer <= 0 {
		return pm.buddyAllocOneLocked(pref)
	}
	pg, served := pm.tierAllocOneLocked(pref, tier)
	if pg == nil {
		return nil, ErrNoMemory
	}
	pm.countHomeLocked(pref, served, 1)
	pm.allocs.Add(1)
	return pg, nil
}

// tierAllocOneLocked picks the lowest-addressed free frame of the given
// tier, preferring socket pref and falling through the rest ascending.
// Reservation steering applies exactly as in buddyAllocOneLocked — a
// protected socket's scan is restricted to sub-reservation blocks — but
// with no spill pass: a tier whose only free frames sit in protected
// reserved spans reports ErrNoMemory instead of splitting one.  Tier
// placement is an optimization; silently destroying superpage stock for
// it would trade a surcharge for a reservation starvation.  Caller holds
// pm.mu; buddy tiered pools only.
func (pm *PhysMem) tierAllocOneLocked(pref, tier int) (pg *Page, served int) {
	served = -1
	pm.eachSocketFrom(pref, func(s int) bool {
		best, bestK := pm.pickLowestTierLocked(s, tier, 0)
		if bestK < 0 {
			return true
		}
		if pm.protectedLocked(s) && bestK >= pm.reservOrder {
			sb, sk := pm.pickLowestTierLocked(s, tier, pm.reservOrder)
			if sk < 0 {
				return true // only protected blocks hold this tier here: decline
			}
			best, bestK = sb, sk
			pm.reservSteers++
		}
		pg = pm.takeOneAtLocked(s, best, bestK)
		served = s
		return false
	})
	return pg, served
}

// AllocNTierOn allocates n pages from the given tier by address-ordered
// gather (the AllocNOn discipline restricted to one tier), preferring the
// given socket and spilling to the others ascending.  On a single-tier or
// LIFO pool the tier is ignored.  On failure no pages are retained.
func (pm *PhysMem) AllocNTierOn(pref, tier, n int) ([]*Page, error) {
	if !pm.buddy || pm.fastPer <= 0 {
		return pm.AllocNOn(pref, n)
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.tierFreeLocked(tier) < n {
		return nil, ErrNoMemory
	}
	out := make([]*Page, 0, n)
	local := 0
	pm.eachSocketFrom(pref, func(s int) bool {
		for len(out) < n {
			best, bestK := pm.pickLowestTierLocked(s, tier, 0)
			if bestK < 0 {
				break
			}
			pm.orders[s][bestK].remove(best)
			size := 1 << bestK
			pm.freePages -= size
			pm.freeBySock[s] -= size
			pm.tierFreeDelta(s, best, -size)
			if need := n - len(out); size <= need {
				for f := best; f < best+uint64(size); f++ {
					out = append(out, pm.takePageLocked(f))
				}
			} else {
				out = append(out, pm.carveLocked(best, bestK, need)...)
			}
		}
		if s == pref {
			local = len(out)
		}
		return len(out) < n
	})
	if len(out) < n {
		// The gauge said the frames existed; only a bug gets here.
		for _, p := range out {
			pm.freeUnzeroedLocked(p)
		}
		return nil, ErrNoMemory
	}
	pm.countHomeLocked(pref, pref, local)
	pm.countHomeLocked(pref, -1, n-local)
	pm.allocs.Add(uint64(n))
	return out, nil
}

// TierTarget allocates one destination page for a tier migration: the
// lowest-addressed free frame in the given tier, preferring the given
// socket.  It is MigrationTarget's tier-scoped sibling — the caller copies
// a resident page's bytes into it, MigratePage-swaps the frames, and frees
// the doomed handle.  Reservation steering applies (tierAllocOneLocked):
// a tier whose only free frames sit in protected reserved spans counts as
// full rather than splitting one.  ErrNoMemory means the tier is full and
// the caller should demote something first (or abandon the move).
func (pm *PhysMem) TierTarget(tier, pref int) (*Page, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.buddy || pm.fastPer <= 0 {
		return nil, ErrNoMemory
	}
	pg, served := pm.tierAllocOneLocked(pref, tier)
	if pg == nil {
		return nil, ErrNoMemory
	}
	pm.countHomeLocked(pref, served, 1)
	pm.allocs.Add(1)
	return pg, nil
}
