package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"sfbuf/internal/fs"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/netstack"
	"sfbuf/internal/sendfile"
	"sfbuf/internal/smp"
)

// Trace is a synthetic web workload standing in for the NASA and Rice
// logs of Section 6.5.2 (the original traces are not distributable): a
// document corpus with a fixed total footprint and a Zipf-popularity
// request sequence over it.
type Trace struct {
	// Name labels the trace ("NASA", "Rice").
	Name string
	// FileSizes holds each document's size in bytes.
	FileSizes []int
	// Requests is the sequence of document indices to serve.
	Requests []int
	// Footprint is the sum of FileSizes.
	Footprint int64
}

// SynthesizeTrace builds a trace with nfiles documents totalling footprint
// bytes and nreq Zipf-distributed requests (exponent s > 1).  Document
// sizes follow a lognormal-like distribution (many small, few large),
// scaled to hit the footprint exactly.
func SynthesizeTrace(name string, footprint int64, nfiles, nreq int, s float64, seed int64) *Trace {
	if nfiles <= 0 || nreq < 0 || footprint < int64(nfiles) {
		panic(fmt.Sprintf("workloads: bad trace parameters %d/%d/%d", footprint, nfiles, nreq))
	}
	rng := rand.New(rand.NewSource(seed))

	// Draw raw sizes from a lognormal shape, then scale to footprint.
	raw := make([]float64, nfiles)
	var sum float64
	for i := range raw {
		v := rng.NormFloat64()*1.0 + 9.2 // median ~ e^9.2 ~ 10 KB before scaling
		raw[i] = math.Exp(v)
		sum += raw[i]
	}
	sizes := make([]int, nfiles)
	var total int64
	for i := range sizes {
		sz := int(float64(footprint) * raw[i] / sum)
		if sz < 64 {
			sz = 64
		}
		sizes[i] = sz
		total += int64(sz)
	}
	// Fix up rounding drift on the largest file.
	largest := 0
	for i, sz := range sizes {
		if sz > sizes[largest] {
			largest = i
		}
	}
	drift := int(footprint - total)
	if sizes[largest]+drift > 0 {
		sizes[largest] += drift
		total += int64(drift)
	}

	// Zipf request sequence: rank 0 most popular.  Popularity rank is a
	// random permutation of documents so size and popularity are
	// uncorrelated, as in real traces.
	perm := rng.Perm(nfiles)
	zipf := rand.NewZipf(rng, s, 1, uint64(nfiles-1))
	reqs := make([]int, nreq)
	for i := range reqs {
		reqs[i] = perm[int(zipf.Uint64())]
	}
	return &Trace{Name: name, FileSizes: sizes, Requests: reqs, Footprint: total}
}

// NASATrace approximates the paper's NASA workload: 258.7 MB footprint.
// The request count is configurable so tests can run small replays.
func NASATrace(nreq int) *Trace {
	return SynthesizeTrace("NASA", 258_700_000, 10000, nreq, 1.2, 1994)
}

// RiceTrace approximates the paper's Rice workload: 1.1 GB footprint.
func RiceTrace(nreq int) *Trace {
	return SynthesizeTrace("Rice", 1_100_000_000, 20000, nreq, 1.15, 2002)
}

// WebConfig parameterizes the web server experiment (Section 6.5.2): "We
// ran an emulation of 30 concurrent clients ... Apache was configured to
// use sendfile(2)."
type WebConfig struct {
	// Workers is the server's worker count; Apache's process pool is
	// modeled as one worker per virtual CPU by default.
	Workers int
	// ChecksumOffload mirrors the NIC configuration (Figures 19-20).
	ChecksumOffload bool
	// MTU of the server's link; 1500 in the evaluation's Gigabit setup.
	MTU int
}

// DefaultWeb returns the evaluation defaults.
func DefaultWeb(k *kernel.Kernel) WebConfig {
	return WebConfig{
		Workers:         k.M.NumCPUs(),
		ChecksumOffload: true,
		MTU:             netstack.MTUSmall,
	}
}

// WebCorpus is a trace's document store: a filesystem populated with the
// trace's files.
type WebCorpus struct {
	FS    *fs.FS
	Disk  *memdisk.Disk
	Names []string
}

// CorpusDiskSize returns the memory-disk size BuildCorpus will allocate
// for a trace: document data plus inode/bitmap/indirect overhead.
// Experiment harnesses use it to size physical memory.
func CorpusDiskSize(trace *Trace) int64 {
	return trace.Footprint + trace.Footprint/8 +
		int64(len(trace.FileSizes))*2*fs.BlockSize + 64*fs.BlockSize
}

// BuildCorpus creates a filesystem sized for the trace and writes every
// document.  This is the experiment's setup phase; it also warms the
// mapping cache the same way installing the document root would.
func BuildCorpus(ctx *smp.Context, k *kernel.Kernel, trace *Trace) (*WebCorpus, error) {
	diskSize := CorpusDiskSize(trace)
	d, err := memdisk.New(k, diskSize)
	if err != nil {
		return nil, fmt.Errorf("workloads: corpus disk: %w", err)
	}
	fsys, err := fs.Mkfs(ctx, k, d, len(trace.FileSizes)+1)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(trace.FileSizes))
	buf := make([]byte, 0)
	for i, sz := range trace.FileSizes {
		if sz > cap(buf) {
			buf = make([]byte, sz)
			for j := range buf {
				buf[j] = byte(j)
			}
		}
		names[i] = fmt.Sprintf("doc%06d.html", i)
		if err := fsys.WriteFile(ctx, names[i], buf[:sz]); err != nil {
			return nil, fmt.Errorf("workloads: writing %s (%d bytes): %w", names[i], sz, err)
		}
	}
	return &WebCorpus{FS: fsys, Disk: d, Names: names}, nil
}

// WebResult reports a replay's outcome.
type WebResult struct {
	Requests    int
	BytesServed int64
}

// WebServer replays the trace's requests against the corpus with a pool
// of workers, each pinned to a CPU and serving its share of requests over
// its own client connection with sendfile.  Elapsed time for throughput
// is the machine's ParallelCycles: the web server is the one workload
// that exploits multiple CPUs (Section 6.2).
func WebServer(k *kernel.Kernel, corpus *WebCorpus, trace *Trace, cfg WebConfig) (WebResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = k.M.NumCPUs()
	}
	if cfg.MTU == 0 {
		cfg.MTU = netstack.MTUSmall
	}
	st := netstack.NewStack(k, cfg.MTU)
	st.ChecksumOffload = cfg.ChecksumOffload

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		res     WebResult
		firstEr error
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := k.Ctx(w % k.M.NumCPUs())
			conn := st.NewSinkConn()
			defer conn.Close(ctx)
			var served int64
			var count int
			for r := w; r < len(trace.Requests); r += cfg.Workers {
				name := corpus.Names[trace.Requests[r]]
				// Request handling outside data movement: accept,
				// parse, log, socket setup (Apache + kernel).
				ctx.Charge(ctx.Cost().HTTPRequestFixed)
				n, err := sendfile.SendFile(ctx, k, corpus.FS, conn, name)
				if err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = fmt.Errorf("worker %d: %w", w, err)
					}
					mu.Unlock()
					return
				}
				served += n
				count++
			}
			mu.Lock()
			res.BytesServed += served
			res.Requests += count
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return res, firstEr
}
