package workloads

import (
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/fs"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/netstack"
)

func bootWL(t *testing.T, plat arch.Platform, mk kernel.MapperKind, physPages int, backed bool) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    physPages,
		Backed:       backed,
		CacheEntries: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBWPipeMovesAllBytes(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		k := bootWL(t, arch.XeonMP(), mk, 256, false)
		cfg := DefaultBWPipe(k)
		cfg.TotalBytes = 2 << 20
		moved, err := BWPipe(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if moved != 2<<20 {
			t.Fatalf("moved %d, want %d", moved, 2<<20)
		}
		if k.M.TotalCycles() <= 0 {
			t.Fatal("no cycles consumed")
		}
	}
}

func TestBWPipeSFBufFasterThanOriginal(t *testing.T) {
	elapsed := func(mk kernel.MapperKind) int64 {
		k := bootWL(t, arch.XeonMP(), mk, 256, false)
		cfg := DefaultBWPipe(k)
		cfg.TotalBytes = 2 << 20
		if _, err := BWPipe(k, cfg); err != nil {
			t.Fatal(err)
		}
		return int64(k.M.TotalCycles())
	}
	sf, orig := elapsed(kernel.SFBuf), elapsed(kernel.OriginalKernel)
	if sf >= orig {
		t.Fatalf("sf_buf (%d cycles) not faster than original (%d)", sf, orig)
	}
}

func TestBWPipeRejectsBadConfig(t *testing.T) {
	k := bootWL(t, arch.XeonUP(), kernel.SFBuf, 128, false)
	if _, err := BWPipe(k, BWPipeConfig{}); err == nil {
		t.Fatal("zero config must fail")
	}
}

func TestDDReadsWholeDisk(t *testing.T) {
	k := bootWL(t, arch.OpteronMP(), kernel.SFBuf, 2048, false)
	d, err := memdisk.New(k, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := PopulateDisk(k.Ctx(0), d, 64<<10); err != nil {
		t.Fatal(err)
	}
	moved, err := DD(k, d, DDConfig{BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 4<<20 {
		t.Fatalf("moved %d, want %d", moved, 4<<20)
	}
}

func TestPostMarkRunsTransactions(t *testing.T) {
	k := bootWL(t, arch.XeonMP(), kernel.SFBuf, 4096, true)
	d, err := memdisk.New(k, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx := k.Ctx(0)
	fsys, err := fs.Mkfs(ctx, k, d, 256)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PostMarkConfig1()
	cfg.InitialFiles = 40
	cfg.Transactions = 200
	if err := PostMarkInit(ctx, fsys, cfg); err != nil {
		t.Fatal(err)
	}
	if fsys.NumFiles() != 40 {
		t.Fatalf("init created %d files, want 40", fsys.NumFiles())
	}
	res, err := PostMark(k, fsys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 200 {
		t.Fatalf("transactions = %d, want 200", res.Transactions)
	}
	if res.Creates+res.Deletes == 0 || res.Reads+res.Appends == 0 {
		t.Fatalf("degenerate mix: %+v", res)
	}
	if res.BytesRead == 0 || res.BytesWritten == 0 {
		t.Fatalf("no data moved: %+v", res)
	}
	// The filesystem must still be consistent after the churn.
	if err := fsys.Fsck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestPostMarkDeterministic(t *testing.T) {
	run := func() PostMarkResult {
		k := bootWL(t, arch.XeonUP(), kernel.SFBuf, 4096, true)
		d, _ := memdisk.New(k, 8<<20)
		ctx := k.Ctx(0)
		fsys, _ := fs.Mkfs(ctx, k, d, 256)
		cfg := PostMarkConfig1()
		cfg.InitialFiles = 30
		cfg.Transactions = 150
		PostMarkInit(ctx, fsys, cfg)
		res, err := PostMark(k, fsys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("postmark not deterministic: %+v vs %+v", a, b)
	}
}

func TestNetperfMovesAllBytes(t *testing.T) {
	for _, mtu := range []int{netstack.MTUSmall, netstack.MTULarge} {
		k := bootWL(t, arch.XeonMP(), kernel.SFBuf, 512, false)
		cfg := DefaultNetperf(k, mtu)
		cfg.TotalBytes = 1 << 20
		moved, err := Netperf(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if moved != 1<<20 {
			t.Fatalf("mtu %d: moved %d, want %d", mtu, moved, 1<<20)
		}
	}
}

func TestSynthesizeTraceProperties(t *testing.T) {
	tr := SynthesizeTrace("test", 4<<20, 64, 500, 1.2, 7)
	if len(tr.FileSizes) != 64 || len(tr.Requests) != 500 {
		t.Fatalf("shape: %d files %d requests", len(tr.FileSizes), len(tr.Requests))
	}
	var sum int64
	for _, sz := range tr.FileSizes {
		if sz <= 0 {
			t.Fatal("non-positive file size")
		}
		sum += int64(sz)
	}
	if sum != tr.Footprint {
		t.Fatalf("footprint %d != sum %d", tr.Footprint, sum)
	}
	// Footprint must be within 1% of the request.
	if diff := sum - 4<<20; diff < -(4<<20)/100 || diff > (4<<20)/100 {
		t.Fatalf("footprint drifted: %d vs %d", sum, 4<<20)
	}
	for _, r := range tr.Requests {
		if r < 0 || r >= 64 {
			t.Fatalf("request index %d out of range", r)
		}
	}
	// Zipf: the most popular file should dominate.
	counts := map[int]int{}
	for _, r := range tr.Requests {
		counts[r]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < len(tr.Requests)/10 {
		t.Fatalf("no popularity skew: max count %d of %d", max, len(tr.Requests))
	}
	// Determinism.
	tr2 := SynthesizeTrace("test", 4<<20, 64, 500, 1.2, 7)
	if tr2.Footprint != tr.Footprint || tr2.Requests[0] != tr.Requests[0] {
		t.Fatal("trace synthesis not deterministic")
	}
}

func TestWebServerServesTrace(t *testing.T) {
	tr := SynthesizeTrace("mini", 2<<20, 32, 200, 1.2, 11)
	k := bootWL(t, arch.XeonMPHTT(), kernel.SFBuf, 4096, true)
	ctx := k.Ctx(0)
	corpus, err := BuildCorpus(ctx, k, tr)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.FS.NumFiles() != 32 {
		t.Fatalf("corpus has %d files, want 32", corpus.FS.NumFiles())
	}
	k.Reset()
	res, err := WebServer(k, corpus, tr, DefaultWeb(k))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 {
		t.Fatalf("served %d requests, want 200", res.Requests)
	}
	// Bytes served = sum of requested file sizes.
	var want int64
	for _, r := range tr.Requests {
		want += int64(tr.FileSizes[r])
	}
	if res.BytesServed != want {
		t.Fatalf("served %d bytes, want %d", res.BytesServed, want)
	}
	// The web server must actually use multiple CPUs.
	busy := 0
	for i := 0; i < k.M.NumCPUs(); i++ {
		if k.M.CPU(i).Cycles() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d CPUs busy; web server should parallelize", busy)
	}
}

func TestWebServerSFBufBeatsOriginal(t *testing.T) {
	tr := SynthesizeTrace("mini", 2<<20, 32, 300, 1.2, 13)
	elapsed := func(mk kernel.MapperKind) int64 {
		k := bootWL(t, arch.XeonMP(), mk, 4096, true)
		ctx := k.Ctx(0)
		corpus, err := BuildCorpus(ctx, k, tr)
		if err != nil {
			t.Fatal(err)
		}
		k.Reset()
		if _, err := WebServer(k, corpus, tr, DefaultWeb(k)); err != nil {
			t.Fatal(err)
		}
		return int64(k.M.ParallelCycles())
	}
	sf, orig := elapsed(kernel.SFBuf), elapsed(kernel.OriginalKernel)
	if sf >= orig {
		t.Fatalf("sf_buf web (%d cycles) not faster than original (%d)", sf, orig)
	}
}
