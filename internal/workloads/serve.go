package workloads

// The virtual-internet serving macro-benchmark: thousands of concurrent
// TCP-ish connections stream a Zipf-popular, heavy-tailed document
// corpus from one server kernel through internal/vnet's lossy,
// reordering, delaying links to client endpoints that read at their own
// pace.  Each connection's mapping windows are sized by its
// kernel.SendWindow handle — the adaptive send-batching policy under
// test — and the run reports the mapping economy end to end: walks and
// shootdown rounds per byte served, and the latency percentiles of what
// mapping management added to each request.
//
// Everything is deterministic: the virtual network replays the same
// packet schedule for the same seed, connection behaviour (slow readers,
// churn, zero-copy mix) is drawn from a splitmix64 stream at setup time
// in connection order, and the driver runs the event loop on one
// goroutine.  Two runs with one seed produce identical TraceHash,
// identical counters, and identical percentiles.

import (
	"fmt"
	"sort"

	"sfbuf/internal/kernel"
	"sfbuf/internal/netstack"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
	"sfbuf/internal/vnet"
)

// ServeConfig parameterizes one serving run.  Zero values take the
// defaults noted on each field.
type ServeConfig struct {
	// Clients is the number of concurrent connections (default 64);
	// RequestsPerConn the requests each serves back to back (default 2).
	Clients         int
	RequestsPerConn int

	// Corpus shape: Files documents totalling Footprint bytes, requested
	// with Zipf exponent ZipfS (defaults 200 files, 4 MB, s=1.2).
	Files     int
	Footprint int64
	ZipfS     float64

	// Network: per-direction loss and reorder percentages and the uniform
	// one-way delay bounds in cycles (defaults 5%, 10%, 1000..5000).
	LossPct    int
	ReorderPct int
	DelayMin   int64
	DelayMax   int64

	// SlowFrac of connections are slow readers: SlowBufBytes receive
	// buffer drained SlowDrainBytes every DrainEvery cycles.  The rest
	// are fast: FastBufBytes buffer, FastDrainBytes per drain.
	// (Defaults: 0.5 slow, 8 KB/2 KB slow, 64 KB/32 KB fast, 20k cycles.)
	SlowFrac       float64
	SlowBufBytes   int
	SlowDrainBytes int
	FastBufBytes   int
	FastDrainBytes int
	DrainEvery     int64

	// ChurnFrac of connections are aborted mid-transfer (client vanishes,
	// server tears down with windows still unacknowledged).
	ChurnFrac float64
	// ZeroCopyFrac of requests are served from wired user memory (the
	// zero-copy socket-send shape) instead of the file corpus.
	ZeroCopyFrac float64

	// StaggerCycles offsets each connection's start (default 200).
	StaggerCycles int64

	// FixedWindowPages pins every connection's mapping window (the fixed-
	// batch ablation arms); zero uses the kernel's per-connection policy.
	FixedWindowPages int

	// Seed drives the network, the corpus, and the behaviour draws.
	Seed int64
	// MaxEvents bounds the event loop (default 50M); exceeding it is an
	// error, not a hang.
	MaxEvents uint64
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Clients == 0 {
		c.Clients = 64
	}
	if c.RequestsPerConn == 0 {
		c.RequestsPerConn = 2
	}
	if c.Files == 0 {
		c.Files = 200
	}
	if c.Footprint == 0 {
		c.Footprint = 4 << 20
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.DelayMin == 0 {
		c.DelayMin = 1000
	}
	if c.DelayMax == 0 {
		c.DelayMax = 5000
	}
	if c.SlowBufBytes == 0 {
		c.SlowBufBytes = 8 * 1024
	}
	if c.SlowDrainBytes == 0 {
		c.SlowDrainBytes = 2 * 1024
	}
	if c.FastBufBytes == 0 {
		c.FastBufBytes = netstack.DefaultWindow
	}
	if c.FastDrainBytes == 0 {
		c.FastDrainBytes = 32 * 1024
	}
	if c.DrainEvery == 0 {
		c.DrainEvery = 20_000
	}
	if c.StaggerCycles == 0 {
		c.StaggerCycles = 200
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 50_000_000
	}
	return c
}

// ServeResult reports one run's serving outcome and mapping economy.
type ServeResult struct {
	// Requests were enqueued; Completed were fully acknowledged (churned
	// connections abandon their remainder); AbortedConns were churned.
	Requests     int
	Completed    int
	AbortedConns int
	// BytesReceived sums every client's reassembled in-order bytes.
	BytesReceived int64

	// P50/P99/P999 are mapping-latency percentiles over completed
	// requests, in simulated cycles: map+release CPU work plus stall
	// backoff (see netstack.VRequest.MapLatency).
	P50, P99, P999 int64

	// Walks, Rounds and Locks are the page-table walks, shootdown rounds
	// (remote invalidation initiations) and lock acquisitions the run
	// charged; the PerMB forms divide by BytesReceived.
	Walks, Rounds, Locks    uint64
	WalksPerMB, RoundsPerMB float64

	// TraceHash certifies the packet schedule; Serve and Net are the
	// endpoint and link counters.
	TraceHash uint64
	Serve     netstack.VServeStats
	Net       vnet.Stats

	// Latencies is the sorted completed-request mapping-latency sample.
	Latencies []int64
}

// percentile returns the p-th percentile of a sorted sample (nearest
// rank), zero on an empty sample.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RunServe executes one serving run against a booted kernel.  The kernel
// must be Backed (the corpus lives on a memory disk).
func RunServe(k *kernel.Kernel, cfg ServeConfig) (*ServeResult, error) {
	cfg = cfg.withDefaults()
	ctx0 := k.Ctx(0)

	trace := SynthesizeTrace("serve", cfg.Footprint, cfg.Files,
		cfg.Clients*cfg.RequestsPerConn, cfg.ZipfS, cfg.Seed)
	corpus, err := BuildCorpus(ctx0, k, trace)
	if err != nil {
		return nil, err
	}
	const umPages = 64
	um, err := vm.AllocUserMem(k.M.Phys, umPages*vm.PageSize)
	if err != nil {
		return nil, fmt.Errorf("workloads: serve user memory: %w", err)
	}

	// Resolve every corpus file's block->page mapping up front — the warm
	// metadata cache of a long-running server.  The resolution does real
	// inode and block-pointer reads through the disk, but at setup time,
	// where the mapper may block; inside the event loop a blocking
	// metadata read would deadlock the single-threaded schedule the
	// moment send windows fully subscribe the buffer cache.
	filePages := make([][]*vm.Page, len(trace.FileSizes))
	for doc, size := range trace.FileSizes {
		npg := (size + vm.PageSize - 1) / vm.PageSize
		pgs := make([]*vm.Page, npg)
		for pi := 0; pi < npg; pi++ {
			pg, err := corpus.FS.FilePage(ctx0, corpus.Names[doc], pi)
			if err != nil {
				return nil, fmt.Errorf("workloads: resolving %q page %d: %w",
					corpus.Names[doc], pi, err)
			}
			pgs[pi] = pg
		}
		filePages[doc] = pgs
	}

	net := vnet.New(uint64(cfg.Seed))
	st := netstack.NewStack(k, netstack.MTUSmall)
	srv := netstack.NewVServer(st, net)

	res := &ServeResult{Requests: cfg.Clients * cfg.RequestsPerConn}
	srv.OnComplete = func(_ *netstack.VConn, r *netstack.VRequest) {
		res.Latencies = append(res.Latencies, r.MapLatency())
	}

	// Behaviour draws come from their own stream, in connection order, at
	// setup time — independent of packet scheduling, so the same seed
	// assigns the same roles however the network interleaves.
	behave := vnet.NewRand(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 1)
	cons := k.Consumer("vserve")
	ncpu := k.M.NumCPUs()

	type endpoints struct {
		conn   *netstack.VConn
		client *netstack.VClient
	}
	eps := make([]endpoints, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		slow := behave.Float64() < cfg.SlowFrac
		churn := behave.Float64() < cfg.ChurnFrac
		bufCap, drain := cfg.FastBufBytes, cfg.FastDrainBytes
		if slow {
			bufCap, drain = cfg.SlowBufBytes, cfg.SlowDrainBytes
		}

		var conn *netstack.VConn
		var client *netstack.VClient
		s2c := net.NewLink(cfg.DelayMin, cfg.DelayMax, func(p vnet.Packet) { client.HandleData(p) })
		s2c.LossPct, s2c.ReorderPct = cfg.LossPct, cfg.ReorderPct
		c2s := net.NewLink(cfg.DelayMin, cfg.DelayMax, func(p vnet.Packet) { conn.HandleAck(p) })
		c2s.LossPct, c2s.ReorderPct = cfg.LossPct, cfg.ReorderPct

		var sw *kernel.SendWindow
		if cfg.FixedWindowPages > 0 {
			sw = cons.FixedSendWindow(cfg.FixedWindowPages)
		} else {
			// Adaptive connections slow-start: a thousand connections
			// each opening at the historical 16-page window is a demand
			// spike several times the mapping cache, before a single ACK
			// has been observed.  Fast readers grow out of the floor
			// within a few ACK epochs; slow readers were never going to
			// use more.
			sw = cons.SendWindow().StartPages(kernel.MinSendWindowPages)
		}
		conn = srv.NewVConn(i, k.Ctx(i%ncpu), s2c, sw)
		client = netstack.NewVClient(net, i, c2s, bufCap, drain, cfg.DrainEvery)
		eps[i] = endpoints{conn: conn, client: client}

		reqs := make([]*netstack.VRequest, 0, cfg.RequestsPerConn)
		for r := 0; r < cfg.RequestsPerConn; r++ {
			doc := trace.Requests[i*cfg.RequestsPerConn+r]
			size := int64(trace.FileSizes[doc])
			if cfg.ZeroCopyFrac > 0 && behave.Float64() < cfg.ZeroCopyFrac {
				// Zero-copy socket send: page-aligned user memory.
				need := int((size + vm.PageSize - 1) / vm.PageSize)
				if need > umPages {
					need = umPages
					size = umPages * vm.PageSize
				}
				off := behave.Intn(umPages-need+1) * vm.PageSize
				reqs = append(reqs, &netstack.VRequest{
					Size: size,
					PageAt: func(_ *smp.Context, pi int) (*vm.Page, error) {
						pg, _, err := um.PageAt(off + pi*vm.PageSize)
						return pg, err
					},
				})
			} else {
				pgs := filePages[doc]
				reqs = append(reqs, &netstack.VRequest{
					Size: size,
					PageAt: func(_ *smp.Context, pi int) (*vm.Page, error) {
						return pgs[pi], nil
					},
				})
			}
		}
		start := int64(i) * cfg.StaggerCycles
		c := conn
		net.After(start, func() {
			for _, rq := range reqs {
				c.Enqueue(rq)
			}
		})
		if churn {
			res.AbortedConns++
			at := start + 50_000 + behave.Int63n(1_000_000)
			cc, cl := conn, client
			net.After(at, func() { cc.Abort(); cl.Close() })
		}
	}

	before := k.M.SnapshotCounters()
	net.RunLimit(cfg.MaxEvents)
	if net.Pending() != 0 {
		return nil, fmt.Errorf("workloads: serve did not quiesce within %d events (%d pending)",
			cfg.MaxEvents, net.Pending())
	}
	for i := range eps {
		if err := eps[i].conn.Err(); err != nil {
			return nil, fmt.Errorf("workloads: serve conn %d: %w", i, err)
		}
		res.BytesReceived += eps[i].client.Stats().BytesRecved
	}

	delta := k.M.SnapshotCounters().Sub(before)
	res.Walks = delta.PTWalks
	res.Rounds = delta.RemoteInvIssued
	res.Locks = delta.LockAcq
	if mb := float64(res.BytesReceived) / (1 << 20); mb > 0 {
		res.WalksPerMB = float64(res.Walks) / mb
		res.RoundsPerMB = float64(res.Rounds) / mb
	}

	sort.Slice(res.Latencies, func(a, b int) bool { return res.Latencies[a] < res.Latencies[b] })
	res.Completed = len(res.Latencies)
	res.P50 = percentile(res.Latencies, 0.50)
	res.P99 = percentile(res.Latencies, 0.99)
	res.P999 = percentile(res.Latencies, 0.999)
	res.TraceHash = net.TraceHash()
	res.Serve = srv.Stats()
	res.Net = net.Stats()
	return res, nil
}
