package workloads

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"sfbuf/internal/fs"
	"sfbuf/internal/kernel"
	"sfbuf/internal/smp"
)

// PostMarkConfig parameterizes the PostMark benchmark (Section 6.4.2):
// "It creates a pool of continuously changing files and measures the
// transaction rates where a transaction is creating, deleting, reading
// from or appending to a file.  We used the benchmark's default
// parameters, i.e., block size of 512 bytes and file sizes ranging from
// 500 bytes up to 9.77 KB."
type PostMarkConfig struct {
	// InitialFiles in the pool; the paper runs 1,000 and 20,000.
	InitialFiles int
	// Transactions to execute; the paper runs 50,000 and 100,000.
	Transactions int
	// MinSize and MaxSize bound file sizes (500 B .. 9.77 KB).
	MinSize, MaxSize int
	// ReadUnit is PostMark's I/O block size (512 B).
	ReadUnit int
	// Seed makes runs reproducible.
	Seed int64
	// CPU runs the benchmark process.
	CPU int
}

// PostMarkConfig3 is the paper's largest configuration: 20,000 initial
// files and 100,000 transactions (Figures 8-10).
func PostMarkConfig3() PostMarkConfig {
	return PostMarkConfig{
		InitialFiles: 20000,
		Transactions: 100000,
		MinSize:      500,
		MaxSize:      9770,
		ReadUnit:     512,
		Seed:         20050410,
	}
}

// PostMarkConfig1 is the paper's first configuration: 1,000 files and
// 50,000 transactions.
func PostMarkConfig1() PostMarkConfig {
	c := PostMarkConfig3()
	c.InitialFiles = 1000
	c.Transactions = 50000
	return c
}

// PostMarkConfig2 is the paper's second configuration: 20,000 files and
// 50,000 transactions.
func PostMarkConfig2() PostMarkConfig {
	c := PostMarkConfig3()
	c.Transactions = 50000
	return c
}

// PostMarkResult reports what the benchmark did.
type PostMarkResult struct {
	Transactions int
	Creates      int
	Deletes      int
	Reads        int
	Appends      int
	BytesRead    int64
	BytesWritten int64
}

// PostMarkInit builds the initial file pool.  It is the setup phase and is
// excluded from measurement, like the paper's (measurement starts at the
// transaction loop).
func PostMarkInit(ctx *smp.Context, fsys *fs.FS, cfg PostMarkConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := make([]byte, cfg.MaxSize)
	rng.Read(data)
	for i := 0; i < cfg.InitialFiles; i++ {
		size := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
		name := fmt.Sprintf("pm%07d", i)
		if err := fsys.WriteFile(ctx, name, data[:size]); err != nil {
			return fmt.Errorf("postmark init file %d: %w", i, err)
		}
	}
	return nil
}

// PostMark runs the transaction phase.  Each transaction is a pair, per
// Katcher's definition: one of {create, delete} and one of {read, append}.
func PostMark(k *kernel.Kernel, fsys *fs.FS, cfg PostMarkConfig) (PostMarkResult, error) {
	ctx := k.Ctx(cfg.CPU)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var res PostMarkResult

	// Track the live pool with a slice for O(1) random selection; sorted
	// so the run is reproducible (List's order is not).
	names := fsys.List()
	sort.Strings(names)
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	addName := func(n string) {
		idx[n] = len(names)
		names = append(names, n)
	}
	delName := func(n string) {
		i := idx[n]
		last := names[len(names)-1]
		names[i] = last
		idx[last] = i
		names = names[:len(names)-1]
		delete(idx, n)
	}

	data := make([]byte, cfg.MaxSize)
	rng.Read(data)
	next := cfg.InitialFiles

	for t := 0; t < cfg.Transactions; t++ {
		// Half 1: create or delete.
		if rng.Intn(2) == 0 || len(names) == 0 {
			size := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
			name := fmt.Sprintf("pm%07d", next)
			next++
			err := fsys.WriteFile(ctx, name, data[:size])
			switch {
			case err == nil:
				addName(name)
				res.Creates++
				res.BytesWritten += int64(size)
			case errors.Is(err, fs.ErrNoSpace) || errors.Is(err, fs.ErrNoInodes):
				// Pool full: PostMark deletes instead.
				if len(names) > 0 {
					victim := names[rng.Intn(len(names))]
					if err := fsys.Delete(ctx, victim); err != nil {
						return res, err
					}
					delName(victim)
					res.Deletes++
				}
			default:
				return res, fmt.Errorf("postmark create: %w", err)
			}
		} else {
			victim := names[rng.Intn(len(names))]
			if err := fsys.Delete(ctx, victim); err != nil {
				return res, fmt.Errorf("postmark delete: %w", err)
			}
			delName(victim)
			res.Deletes++
		}

		// Half 2: read or append.
		if len(names) == 0 {
			res.Transactions++
			continue
		}
		target := names[rng.Intn(len(names))]
		if rng.Intn(2) == 0 {
			n, err := fsys.ReadFull(ctx, target, cfg.ReadUnit)
			if err != nil {
				return res, fmt.Errorf("postmark read: %w", err)
			}
			res.Reads++
			res.BytesRead += n
		} else {
			size := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
			err := fsys.Append(ctx, target, data[:size])
			switch {
			case err == nil:
				res.Appends++
				res.BytesWritten += int64(size)
			case errors.Is(err, fs.ErrNoSpace) || errors.Is(err, fs.ErrFileTooBig):
				// Full: count the attempt, move on (PostMark keeps going).
			default:
				return res, fmt.Errorf("postmark append: %w", err)
			}
		}
		res.Transactions++
	}
	return res, nil
}
