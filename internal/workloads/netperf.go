package workloads

import (
	"fmt"

	"sfbuf/internal/kernel"
	"sfbuf/internal/netstack"
	"sfbuf/internal/vm"
)

// NetperfConfig parameterizes the netperf experiment (Section 6.5.1):
// "examines the throughput achieved between a netperf client and server on
// the same machine.  TCP socket send and receive buffer sizes are set to
// 64 KB ... Sockets are configured to use zero copy send."
type NetperfConfig struct {
	// MTU is 1500 (small) or 16K (large) in the paper.
	MTU int
	// SendSize per send call; 64 KB, matching the socket buffers.
	SendSize int
	// TotalBytes to move.
	TotalBytes int64
	// SenderCPU and ReceiverCPU pin the two processes.
	SenderCPU, ReceiverCPU int
	// ChecksumOffload mirrors the NIC configuration.
	ChecksumOffload bool
}

// DefaultNetperf returns the paper's parameters for the given MTU.
func DefaultNetperf(k *kernel.Kernel, mtu int) NetperfConfig {
	return NetperfConfig{
		MTU:         mtu,
		SendSize:    64 << 10,
		TotalBytes:  64 << 20,
		SenderCPU:   0,
		ReceiverCPU: k.M.NumCPUs() - 1,
	}
}

// Netperf moves TotalBytes through a loopback connection with zero-copy
// sends and returns the bytes received.
func Netperf(k *kernel.Kernel, cfg NetperfConfig) (int64, error) {
	if cfg.MTU <= netstack.HeaderSize || cfg.SendSize <= 0 || cfg.TotalBytes <= 0 {
		return 0, fmt.Errorf("workloads: invalid netperf config %+v", cfg)
	}
	st := netstack.NewStack(k, cfg.MTU)
	st.ChecksumOffload = cfg.ChecksumOffload
	c := st.NewConn()

	sctx := k.Ctx(cfg.SenderCPU)
	rctx := k.Ctx(cfg.ReceiverCPU)

	um, err := vm.AllocUserMem(k.M.Phys, cfg.SendSize)
	if err != nil {
		return 0, err
	}
	defer um.Release()

	sends := int(cfg.TotalBytes / int64(cfg.SendSize))
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < sends; i++ {
			if err := c.SendZeroCopy(sctx, um, 0, cfg.SendSize); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()

	var moved int64
	want := int64(sends) * int64(cfg.SendSize)
	buf := make([]byte, 64<<10)
	for moved < want {
		n, err := c.Recv(rctx, buf)
		if err != nil {
			return moved, err
		}
		moved += int64(n)
	}
	if err := <-errc; err != nil {
		return moved, err
	}
	c.Close(sctx)
	return moved, nil
}
