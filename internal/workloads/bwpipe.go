// Package workloads implements the paper's five evaluation workloads —
// lmbench bw_pipe, dd over memory disks, PostMark, netperf, and a web
// server replaying synthetic traces — each driving the kernel subsystems
// exactly the way Section 6 describes.
package workloads

import (
	"fmt"

	"sfbuf/internal/kernel"
	"sfbuf/internal/pipe"
	"sfbuf/internal/vm"
)

// BWPipeConfig parameterizes the lmbench bw_pipe benchmark of Section 6.3:
// "creates a Unix pipe between two processes, transfers 50 MB through the
// pipe in 64 KB chunks and measures the bandwidth obtained."
type BWPipeConfig struct {
	// TotalBytes to move; the paper uses 50 MB.
	TotalBytes int64
	// ChunkSize per write; the paper uses 64 KB.
	ChunkSize int
	// WriterCPU and ReaderCPU pin the two processes.
	WriterCPU, ReaderCPU int
}

// DefaultBWPipe returns the paper's parameters, with the reader on the
// last CPU so multiprocessor coherence costs are visible.
func DefaultBWPipe(k *kernel.Kernel) BWPipeConfig {
	return BWPipeConfig{
		TotalBytes: 50 << 20,
		ChunkSize:  64 << 10,
		WriterCPU:  0,
		ReaderCPU:  k.M.NumCPUs() - 1,
	}
}

// BWPipe runs the benchmark and returns the bytes moved.  The caller
// derives bandwidth from the machine's cycle counters (bw_pipe is a
// ping-pong workload: writer and reader serialize on the pipe, so elapsed
// time is the total cycles consumed).
func BWPipe(k *kernel.Kernel, cfg BWPipeConfig) (int64, error) {
	if cfg.TotalBytes <= 0 || cfg.ChunkSize <= 0 {
		return 0, fmt.Errorf("workloads: invalid bw_pipe config %+v", cfg)
	}
	p := pipe.New(k)
	defer p.Close()

	wctx := k.Ctx(cfg.WriterCPU)
	rctx := k.Ctx(cfg.ReaderCPU)

	um, err := vm.AllocUserMem(k.M.Phys, cfg.ChunkSize)
	if err != nil {
		return 0, err
	}
	defer um.Release()

	writes := int(cfg.TotalBytes / int64(cfg.ChunkSize))
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < writes; i++ {
			if err := p.Write(wctx, um, 0, cfg.ChunkSize); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()

	buf := make([]byte, cfg.ChunkSize)
	var moved int64
	want := int64(writes) * int64(cfg.ChunkSize)
	for moved < want {
		n, err := p.Read(rctx, buf)
		if err != nil {
			return moved, err
		}
		moved += int64(n)
	}
	if err := <-errc; err != nil {
		return moved, err
	}
	return moved, nil
}
