package workloads

import (
	"fmt"

	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/smp"
)

// DDConfig parameterizes the disk-dump experiment of Section 6.4.1:
// "uses dd to transfer a memory disk to the null device using a block size
// of 64 KB".
type DDConfig struct {
	// BlockSize per read; the paper uses 64 KB.
	BlockSize int
	// CPU runs the dd process.
	CPU int
}

// PopulateDisk writes the whole disk once.  It doubles as the measurement
// warmup: creating the memory disk's contents maps every page, so a disk
// that fits in the mapping cache starts the measured phase fully cached —
// matching the paper's "near 100% cache-hit rate" observation for the
// 128 MB disk.
func PopulateDisk(ctx *smp.Context, d *memdisk.Disk, blockSize int) error {
	if blockSize <= 0 {
		blockSize = 64 << 10
	}
	buf := make([]byte, blockSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for off := int64(0); off < d.Size(); off += int64(blockSize) {
		n := min64(int64(blockSize), d.Size()-off)
		if err := d.WriteAt(ctx, buf[:n], off); err != nil {
			return err
		}
	}
	return nil
}

// DD sequentially reads the whole disk to the null device, returning the
// bytes transferred.
func DD(k *kernel.Kernel, d *memdisk.Disk, cfg DDConfig) (int64, error) {
	if cfg.BlockSize <= 0 {
		return 0, fmt.Errorf("workloads: invalid dd block size %d", cfg.BlockSize)
	}
	ctx := k.Ctx(cfg.CPU)
	buf := make([]byte, cfg.BlockSize)
	var moved int64
	for off := int64(0); off < d.Size(); off += int64(cfg.BlockSize) {
		n := min64(int64(cfg.BlockSize), d.Size()-off)
		if err := d.ReadAt(ctx, buf[:n], off); err != nil {
			return moved, err
		}
		moved += n // written to /dev/null: discarded
	}
	return moved, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
