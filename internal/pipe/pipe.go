// Package pipe implements Unix pipes with FreeBSD's two data paths
// (Section 2.1):
//
//   - Small writes copy twice: writer into a statically mapped kernel
//     buffer, reader out of it.  No ephemeral mappings are involved.
//   - Large writes that would fill the pipe take the direct path: the
//     writer determines the physical pages underlying its source buffer,
//     wires them, and publishes the set through the pipe object.  The
//     reader maps each page with a CPU-private ephemeral mapping, copies
//     the data to its destination buffer, destroys the mapping, and
//     unwires the page.  One copy instead of two — at the price of one
//     ephemeral mapping per page per transfer, which is exactly the cost
//     the sf_buf interface attacks.
//
// The pipe is parameterized by the kernel's Mapper, so the same code runs
// under the sf_buf kernel and the original kernel.
package pipe

import (
	"errors"
	"fmt"
	"sync"

	"sfbuf/internal/kcopy"
	"sfbuf/internal/kernel"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

const (
	// BufferSize is the in-kernel pipe buffer for the double-copy path
	// (FreeBSD's PIPE_SIZE).
	BufferSize = 16 * 1024
	// MinDirect is the smallest write eligible for the direct page-loan
	// path (FreeBSD's PIPE_MINDIRECT).
	MinDirect = 8 * 1024
)

// ErrClosed is returned for operations on a closed pipe end.
var ErrClosed = errors.New("pipe: closed")

// directWindow is a published run of wired writer pages awaiting the
// reader.
type directWindow struct {
	pages    []*vm.Page
	off      int  // offset of the data within the current page
	n        int  // bytes remaining
	consumed bool // reader drained the window completely

	// Batch-mapping state (original kernel path): the whole window is
	// mapped at once with pmap_qenter semantics and released with one
	// ranged invalidation.
	bufs    []*sfbuf.Buf
	pageIdx int

	// Contiguous-run state: the whole window mapped as one VA run, so
	// the reader's copies cross page boundaries under ranged translation
	// instead of re-translating per page.
	run *sfbuf.Run

	// Contiguity decision for this window, made (and observed by the
	// pipe's policy consumer) once, on the first read.
	useRun  bool
	decided bool
}

// Pipe is one unidirectional pipe.
type Pipe struct {
	k *kernel.Kernel
	// contig is the pipe subsystem's contiguity-policy handle: under the
	// adaptive policy it learns from the loaned windows' observed reuse
	// whether to map them as runs or batches.
	contig *kernel.MapConsumer

	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond

	// Double-copy path state: a byte ring over the static kernel buffer.
	ring  []byte
	rpos  int
	wpos  int
	count int

	// Direct path state.  FreeBSD allows one direct window at a time;
	// the writer blocks until the reader drains it.
	direct *directWindow

	closed bool

	stats Stats
}

// Stats counts pipe activity.
type Stats struct {
	DirectWrites uint64
	BufferWrites uint64
	BytesMoved   uint64
}

// New creates a pipe on kernel k.
func New(k *kernel.Kernel) *Pipe {
	p := &Pipe{k: k, contig: k.Consumer("pipe"), ring: make([]byte, BufferSize)}
	p.notEmpty = sync.NewCond(&p.mu)
	p.notFull = sync.NewCond(&p.mu)
	return p
}

// Close wakes all waiters and marks the pipe closed.  Pending direct
// windows are abandoned (their pages unwired).
func (p *Pipe) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.direct != nil {
		// Tear down whatever the reader has not yet consumed; already
		// consumed pages were unwired as the reader advanced.  Batch
		// mappings are released on CPU 0's behalf (process teardown).
		if p.direct.bufs != nil {
			p.k.Map.FreeBatch(p.k.Ctx(0), p.direct.bufs)
			p.direct.bufs = nil
		}
		if p.direct.run != nil {
			p.k.Map.FreeRun(p.k.Ctx(0), p.direct.run)
			p.direct.run = nil
		}
		for _, pg := range p.direct.pages {
			pg.Unwire()
		}
		p.direct.pages = nil
		p.direct = nil
	}
	p.notEmpty.Broadcast()
	p.notFull.Broadcast()
}

// Stats returns a copy of the pipe counters.
func (p *Pipe) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Write sends n bytes starting at off within the writer's user buffer.
// Large writes use the direct page-loan path; small ones are copied into
// the kernel buffer.  Write blocks until the data has been handed to the
// pipe (for direct writes, until the reader consumed the window, which is
// the "fill the pipe and block the writer" behaviour the paper describes).
func (p *Pipe) Write(ctx *smp.Context, um *vm.UserMem, off, n int) error {
	if n < 0 || off < 0 || off+n > um.Len() {
		return vm.ErrBounds
	}
	ctx.Charge(ctx.Cost().Syscall)
	if n >= MinDirect {
		return p.writeDirect(ctx, um, off, n)
	}
	return p.writeBuffered(ctx, um, off, n)
}

func (p *Pipe) writeBuffered(ctx *smp.Context, um *vm.UserMem, off, n int) error {
	// Copy from the user buffer into the kernel ring.  The ring lives in
	// permanently mapped kernel memory, so the copy costs bandwidth but
	// no mapping work.
	remaining := n
	for remaining > 0 {
		p.mu.Lock()
		for p.count == BufferSize && !p.closed {
			p.notFull.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return ErrClosed
		}
		chunk := min(remaining, BufferSize-p.count)
		p.mu.Unlock()

		// Move the bytes outside the lock; the single-writer invariant
		// makes wpos stable.
		buf := make([]byte, chunk)
		if err := um.ReadAt(off+(n-remaining), buf); err != nil {
			return err
		}
		ctx.ChargeBytes(ctx.Cost().CopyPerByte, chunk)

		p.mu.Lock()
		for _, b := range buf {
			p.ring[p.wpos] = b
			p.wpos = (p.wpos + 1) % BufferSize
		}
		p.count += chunk
		p.stats.BufferWrites++
		p.stats.BytesMoved += uint64(chunk)
		p.notEmpty.Signal()
		p.mu.Unlock()
		remaining -= chunk
	}
	return nil
}

func (p *Pipe) writeDirect(ctx *smp.Context, um *vm.UserMem, off, n int) error {
	// "The writer first determines the set of physical pages underlying
	// the source buffer, then wires each of these physical pages ..."
	pages, err := um.PageRange(off, n)
	if err != nil {
		return err
	}
	if err := um.Wire(off, n); err != nil {
		return err
	}
	for range pages {
		ctx.Charge(ctx.Cost().PageWire)
	}

	p.mu.Lock()
	for p.direct != nil && !p.closed {
		p.notFull.Wait()
	}
	if p.closed {
		p.mu.Unlock()
		um.Unwire(off, n)
		return ErrClosed
	}
	// "... and finally passes the set to the receiver through the object
	// implementing the pipe."
	w := &directWindow{
		pages: append([]*vm.Page(nil), pages...),
		off:   off % vm.PageSize,
		n:     n,
	}
	p.direct = w
	p.stats.DirectWrites++
	p.stats.BytesMoved += uint64(n)
	p.notEmpty.Signal()
	// Block until the reader has fully consumed the window: a direct
	// write by definition filled the pipe.
	for !w.consumed && !p.closed {
		p.notFull.Wait()
	}
	consumed := w.consumed
	p.mu.Unlock()
	if !consumed {
		return ErrClosed
	}
	return nil
}

// Read fills dst from the pipe, returning the byte count.  It blocks until
// at least one byte is available or the pipe closes (then io-style: 0,
// ErrClosed).
func (p *Pipe) Read(ctx *smp.Context, dst []byte) (int, error) {
	ctx.Charge(ctx.Cost().Syscall)
	p.mu.Lock()
	for p.count == 0 && p.direct == nil && !p.closed {
		p.notEmpty.Wait()
	}
	if p.count == 0 && p.direct == nil && p.closed {
		p.mu.Unlock()
		return 0, ErrClosed
	}

	// Buffered bytes first (FIFO order between the two paths is
	// preserved because a writer never starts a direct window while
	// buffered bytes it wrote remain unread in this simulator's
	// single-writer usage).
	if p.count > 0 {
		chunk := min(len(dst), p.count)
		for i := 0; i < chunk; i++ {
			dst[i] = p.ring[p.rpos]
			p.rpos = (p.rpos + 1) % BufferSize
		}
		p.count -= chunk
		p.notFull.Signal()
		p.mu.Unlock()
		ctx.ChargeBytes(ctx.Cost().CopyPerByte, chunk)
		return chunk, nil
	}

	w := p.direct
	p.mu.Unlock()
	return p.readDirect(ctx, w, dst)
}

func (p *Pipe) readDirect(ctx *smp.Context, w *directWindow, dst []byte) (int, error) {
	// Kernels whose mapper provides contiguous runs map the whole loaned
	// window as ONE run: a single VA window, installed in one page-table
	// pass, read under ranged translation so copies cross page
	// boundaries without re-translating.  Kernels whose mapper merely
	// batches map it as one vectored request: the original kernel's
	// per-pipe KVA window + pmap_qenter, the sharded cache's per-shard
	// batching, the amd64 direct map's free casts.  The paper's
	// global-lock kernel maps page by page through the ephemeral mapping
	// interface, exactly as Section 2.1 describes.  A window larger than
	// the whole mapping cache (ErrBatchTooLarge) falls back to the
	// per-page path rather than failing the read.  Which multi-page path
	// serves the window is the pipe consumer's contiguity decision —
	// static under a pinned Contig policy, learned from observed window
	// reuse under the adaptive one.
	if !w.decided {
		w.decided = true
		w.useRun = p.contig.UseRuns(ctx, w.pages)
	}
	if w.useRun {
		n, err := p.readDirectRun(ctx, w, dst)
		if !errors.Is(err, sfbuf.ErrBatchTooLarge) {
			return n, err
		}
	}
	if p.k.UseVectored() {
		n, err := p.readDirectBatch(ctx, w, dst)
		if !errors.Is(err, sfbuf.ErrBatchTooLarge) {
			return n, err
		}
	}
	read := 0
	// "For each physical page, it creates an ephemeral mapping that is
	// private to the current CPU ... copies the data from the kernel
	// virtual address provided by the ephemeral mapping to the
	// destination buffer ... destroys the ephemeral mapping, and unwires
	// the physical page."
	for read < len(dst) && w.n > 0 {
		pg := w.pages[0]
		b, err := p.k.Map.Alloc(ctx, pg, sfbuf.Private)
		if err != nil {
			return read, fmt.Errorf("pipe: mapping loaned page: %w", err)
		}
		chunk := min(vm.PageSize-w.off, w.n)
		chunk = min(chunk, len(dst)-read)
		err = kcopy.CopyOut(ctx, p.k.Pmap, dst[read:read+chunk], b.KVA()+uint64(w.off))
		p.k.Map.Free(ctx, b)
		if err != nil {
			return read, err
		}
		read += chunk
		w.off += chunk
		w.n -= chunk
		if w.off == vm.PageSize {
			w.pages[0].Unwire()
			ctx.Charge(ctx.Cost().PageWire)
			w.pages = w.pages[1:]
			w.off = 0
		}
	}
	if w.n == 0 {
		// Unwire any straggler page (partial tail).
		for _, pg := range w.pages {
			pg.Unwire()
			ctx.Charge(ctx.Cost().PageWire)
		}
		w.pages = nil
		p.finishWindow(w)
	}
	return read, nil
}

// readDirectBatch is the vectored window path: map the whole window with
// one AllocBatch, copy out of the buffer vector as the reader drains, and
// unmap everything with one FreeBatch (one ranged invalidation on the
// original kernel, one batched teardown on the sharded cache) when the
// window is consumed.  Shared, not Private, for the same reason as
// readDirectRun: the batch outlives one Read call, so a reader migrating
// CPUs between reads must stay inside the teardown's shootdown mask.
func (p *Pipe) readDirectBatch(ctx *smp.Context, w *directWindow, dst []byte) (int, error) {
	if w.bufs == nil {
		bufs, err := p.k.Map.AllocBatch(ctx, w.pages, 0)
		if err != nil {
			return 0, fmt.Errorf("pipe: batch-mapping loaned window: %w", err)
		}
		w.bufs = bufs
	}
	read := 0
	if len(dst) > 0 && w.n > 0 {
		read = min(len(dst), w.n)
		off := w.pageIdx*vm.PageSize + w.off
		if err := kcopy.CopyOutVec(ctx, p.k.Pmap, dst[:read], w.bufs, off); err != nil {
			return 0, err
		}
		off += read
		w.pageIdx, w.off = off/vm.PageSize, off%vm.PageSize
		w.n -= read
	}
	if w.n == 0 {
		p.k.Map.FreeBatch(ctx, w.bufs)
		w.bufs = nil
		for _, pg := range w.pages {
			pg.Unwire()
			ctx.Charge(ctx.Cost().PageWire)
		}
		w.pages = nil
		p.finishWindow(w)
	}
	return read, nil
}

// readDirectRun is the contiguous-run window path: map the whole window
// with one AllocRun, drain it with ranged-translate copies, and tear
// everything down with one FreeRun — one bulk page-table pass whose
// shootdown debt launders with other runs' — when the window is
// consumed.  The mapping is SHARED, not Private: unlike the per-page
// path, whose private mapping lives and dies inside one Read call on one
// CPU, this window persists across Read calls, and a reader that
// migrates CPUs between reads would otherwise fill a TLB the private
// teardown mask never shoots down.
func (p *Pipe) readDirectRun(ctx *smp.Context, w *directWindow, dst []byte) (int, error) {
	if w.run == nil {
		run, err := p.k.Map.AllocRun(ctx, w.pages, 0)
		if err != nil {
			if errors.Is(err, sfbuf.ErrBatchTooLarge) {
				return 0, err
			}
			return 0, fmt.Errorf("pipe: run-mapping loaned window: %w", err)
		}
		w.run = run
	}
	read := 0
	if len(dst) > 0 && w.n > 0 {
		read = min(len(dst), w.n)
		off := w.pageIdx*vm.PageSize + w.off
		if err := kcopy.CopyOutRun(ctx, p.k.Pmap, dst[:read], w.run, off); err != nil {
			return 0, err
		}
		off += read
		w.pageIdx, w.off = off/vm.PageSize, off%vm.PageSize
		w.n -= read
	}
	if w.n == 0 {
		p.k.Map.FreeRun(ctx, w.run)
		w.run = nil
		for _, pg := range w.pages {
			pg.Unwire()
			ctx.Charge(ctx.Cost().PageWire)
		}
		w.pages = nil
		p.finishWindow(w)
	}
	return read, nil
}

// finishWindow marks a direct window consumed and wakes the writer.
func (p *Pipe) finishWindow(w *directWindow) {
	p.mu.Lock()
	w.consumed = true
	if p.direct == w {
		p.direct = nil
	}
	p.notFull.Broadcast()
	p.mu.Unlock()
}
