package pipe

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/vm"
)

func bootPipeKernel(t *testing.T, mk kernel.MapperKind, plat arch.Platform) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    512,
		Backed:       true,
		CacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func fillPattern(t *testing.T, um *vm.UserMem, seed int64) []byte {
	t.Helper()
	data := make([]byte, um.Len())
	rng := rand.New(rand.NewSource(seed))
	rng.Read(data)
	if err := um.WriteAt(0, data); err != nil {
		t.Fatal(err)
	}
	return data
}

// transferAndCheck pushes the writer's whole buffer through the pipe and
// verifies the reader got identical bytes.
func transferAndCheck(t *testing.T, k *kernel.Kernel, writeSize int) {
	t.Helper()
	p := New(k)
	defer p.Close()
	wctx := k.Ctx(0)
	rctx := k.Ctx(k.M.NumCPUs() - 1)

	um, err := vm.AllocUserMem(k.M.Phys, writeSize)
	if err != nil {
		t.Fatal(err)
	}
	defer um.Release()
	want := fillPattern(t, um, 7)

	got := make([]byte, 0, writeSize)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 8192)
		for len(got) < writeSize {
			n, err := p.Read(rctx, buf)
			if err != nil {
				done <- err
				return
			}
			got = append(got, buf[:n]...)
		}
		done <- nil
	}()
	if err := p.Write(wctx, um, 0, writeSize); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("pipe corrupted data (len %d): first diff at %d", writeSize, firstDiff(got, want))
	}
	// All loaned pages must be unwired once the transfer completes.
	for i, pg := range um.Pages() {
		if pg.Wired() {
			t.Fatalf("page %d still wired after transfer", i)
		}
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return -1
}

func TestSmallWriteBufferedPath(t *testing.T) {
	k := bootPipeKernel(t, kernel.SFBuf, arch.XeonMP())
	p := New(k)
	defer p.Close()
	um, _ := vm.AllocUserMem(k.M.Phys, 4096)
	want := fillPattern(t, um, 3)

	if err := p.Write(k.Ctx(0), um, 0, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	n, err := p.Read(k.Ctx(1), got)
	if err != nil || n != 4096 {
		t.Fatalf("read = (%d, %v)", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("buffered path corrupted data")
	}
	s := p.Stats()
	if s.BufferWrites == 0 || s.DirectWrites != 0 {
		t.Fatalf("stats = %+v: small write must use the buffered path", s)
	}
	// The buffered path uses no ephemeral mappings at all.
	if k.Map.Stats().Allocs != 0 {
		t.Fatal("buffered path must not create ephemeral mappings")
	}
}

func TestLargeWriteDirectPath(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		k := bootPipeKernel(t, mk, arch.XeonMP())
		transferAndCheck(t, k, 64*1024)
	}
}

func TestDirectPathUsesEphemeralMappings(t *testing.T) {
	k := bootPipeKernel(t, kernel.SFBuf, arch.XeonMP())
	transferAndCheck(t, k, 64*1024)
	// 64 KB = 16 pages, mapped once each by the reader.
	if got := k.Map.Stats().Allocs; got != 16 {
		t.Fatalf("mapper allocs = %d, want 16", got)
	}
}

func TestDirectPathOnAMD64(t *testing.T) {
	k := bootPipeKernel(t, kernel.SFBuf, arch.OpteronMP())
	transferAndCheck(t, k, 64*1024)
	if k.M.Counters().LocalInv.Load() != 0 || k.M.Counters().RemoteInvIssued.Load() != 0 {
		t.Fatal("amd64 sf_buf pipe must not invalidate TLBs")
	}
}

func TestOriginalKernelInvalidatesPerPage(t *testing.T) {
	k := bootPipeKernel(t, kernel.OriginalKernel, arch.XeonMP())
	transferAndCheck(t, k, 64*1024)
	// 16 pages -> 16 global invalidations on free.
	if got := k.M.Counters().LocalInv.Load(); got != 16 {
		t.Fatalf("local invalidations = %d, want 16", got)
	}
	if got := k.M.Counters().RemoteInvIssued.Load(); got != 16 {
		t.Fatalf("remote invalidations = %d, want 16", got)
	}
}

func TestSFBufEliminatesInvalidationsOnReuse(t *testing.T) {
	k := bootPipeKernel(t, kernel.SFBuf, arch.XeonMP())
	// Pins the mapping CACHE's reuse property (pure hits, zero
	// invalidations on repeat passes); contiguous runs trade that reuse
	// for ranged translation, so hold the pipe on the cached path.
	k.Cfg.Contig = kernel.ContigOff
	p := New(k)
	defer p.Close()
	wctx, rctx := k.Ctx(0), k.Ctx(1)
	um, _ := vm.AllocUserMem(k.M.Phys, 64*1024)
	defer um.Release()

	// First pass warms the mapping cache; reset counters, then run many
	// more passes over the same user buffer (bw_pipe behaviour).
	runPass := func() {
		done := make(chan struct{})
		go func() {
			buf := make([]byte, 64*1024)
			total := 0
			for total < 64*1024 {
				n, err := p.Read(rctx, buf)
				if err != nil {
					t.Error(err)
					break
				}
				total += n
			}
			close(done)
		}()
		if err := p.Write(wctx, um, 0, 64*1024); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	runPass()
	k.Reset()
	for i := 0; i < 10; i++ {
		runPass()
	}
	if got := k.M.Counters().LocalInv.Load(); got != 0 {
		t.Fatalf("local invalidations = %d, want 0 on cache hits", got)
	}
	if got := k.M.Counters().RemoteInvIssued.Load(); got != 0 {
		t.Fatalf("remote invalidations = %d, want 0 on cache hits", got)
	}
	if hr := k.Map.Stats().HitRate(); hr != 1.0 {
		t.Fatalf("hit rate = %v, want 1.0", hr)
	}
}

func TestOddSizesAndOffsets(t *testing.T) {
	k := bootPipeKernel(t, kernel.SFBuf, arch.XeonMP())
	p := New(k)
	defer p.Close()
	um, _ := vm.AllocUserMem(k.M.Phys, 100*1024)
	want := fillPattern(t, um, 11)

	// Unaligned offset, size spanning partial first and last pages, still
	// >= MinDirect so the direct path runs.
	const off, n = 1234, 40000
	got := make([]byte, 0, n)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 7000)
		for len(got) < n {
			c, err := p.Read(k.Ctx(1), buf)
			if err != nil {
				done <- err
				return
			}
			got = append(got, buf[:c]...)
		}
		done <- nil
	}()
	if err := p.Write(k.Ctx(0), um, off, n); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[off:off+n]) {
		t.Fatal("unaligned direct transfer corrupted data")
	}
	for i, pg := range um.Pages() {
		if pg.Wired() {
			t.Fatalf("page %d still wired", i)
		}
	}
}

func TestWriteBounds(t *testing.T) {
	k := bootPipeKernel(t, kernel.SFBuf, arch.XeonUP())
	p := New(k)
	defer p.Close()
	um, _ := vm.AllocUserMem(k.M.Phys, 4096)
	if err := p.Write(k.Ctx(0), um, 0, 8192); !errors.Is(err, vm.ErrBounds) {
		t.Fatalf("err = %v, want ErrBounds", err)
	}
	if err := p.Write(k.Ctx(0), um, -1, 10); !errors.Is(err, vm.ErrBounds) {
		t.Fatalf("err = %v, want ErrBounds", err)
	}
}

func TestReadOnClosedEmptyPipe(t *testing.T) {
	k := bootPipeKernel(t, kernel.SFBuf, arch.XeonUP())
	p := New(k)
	p.Close()
	if _, err := p.Read(k.Ctx(0), make([]byte, 16)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := p.Write(k.Ctx(0), mustUM(t, k, 64*1024), 0, 64*1024); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func mustUM(t *testing.T, k *kernel.Kernel, n int) *vm.UserMem {
	t.Helper()
	um, err := vm.AllocUserMem(k.M.Phys, n)
	if err != nil {
		t.Fatal(err)
	}
	return um
}

func TestCloseUnwiresPendingWindow(t *testing.T) {
	k := bootPipeKernel(t, kernel.SFBuf, arch.XeonMP())
	p := New(k)
	um := mustUM(t, k, 64*1024)

	done := make(chan error, 1)
	go func() {
		done <- p.Write(k.Ctx(0), um, 0, 64*1024)
	}()
	// Wait for the window to be published, then close without reading.
	for {
		p.mu.Lock()
		pub := p.direct != nil
		p.mu.Unlock()
		if pub {
			break
		}
	}
	p.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("writer err = %v, want ErrClosed", err)
	}
	for i, pg := range um.Pages() {
		if pg.Wired() {
			t.Fatalf("page %d leaked a wire on close", i)
		}
	}
}

func TestBackToBackTransfers(t *testing.T) {
	k := bootPipeKernel(t, kernel.SFBuf, arch.XeonMPHTT())
	p := New(k)
	defer p.Close()
	um := mustUM(t, k, 64*1024)
	defer um.Release()
	want := fillPattern(t, um, 5)

	const rounds = 20
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 64*1024)
		for r := 0; r < rounds; r++ {
			total := 0
			for total < 64*1024 {
				n, err := p.Read(k.Ctx(1), buf[total:])
				if err != nil {
					done <- err
					return
				}
				total += n
			}
			if !bytes.Equal(buf, want) {
				done <- errors.New("round data mismatch")
				return
			}
		}
		done <- nil
	}()
	for r := 0; r < rounds; r++ {
		if err := p.Write(k.Ctx(0), um, 0, 64*1024); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestDirectWindowLargerThanMappingCache pins the vectored fallback: a
// loaned window spanning more pages than the sharded cache holds buffers
// must be read page by page rather than fail with ErrBatchTooLarge.
func TestDirectWindowLargerThanMappingCache(t *testing.T) {
	k := kernel.MustBoot(kernel.Config{
		Platform:     arch.XeonMP(),
		Mapper:       kernel.SFBuf,
		Backed:       true,
		PhysPages:    256,
		CacheEntries: 4, // the 8-page window below cannot batch-map
	})
	um, err := vm.AllocUserMem(k.M.Phys, 8*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 8*vm.PageSize)
	for i := range src {
		src[i] = byte(i * 31)
	}
	if err := um.WriteAt(0, src); err != nil {
		t.Fatal(err)
	}
	p := New(k)
	done := make(chan error, 1)
	go func() { done <- p.Write(k.Ctx(1), um, 0, len(src)) }()
	got := make([]byte, 0, len(src))
	buf := make([]byte, 4096)
	for len(got) < len(src) {
		n, err := p.Read(k.Ctx(0), buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], src[i])
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		t.Fatalf("leaked mappings: allocs %d != frees %d", st.Allocs, st.Frees)
	}
}
