package fs

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sfbuf/internal/memdisk"
)

// memdiskNew allocates another disk on a rig's machine, for exhaustion
// tests.
func memdiskNew(r *rig, size int64) (*memdisk.Disk, error) {
	return memdisk.New(r.k, size)
}

// TestENOSPCLeavesConsistentState fills the filesystem until writes fail,
// then verifies (a) the failure is ErrNoSpace, (b) fsck still passes, and
// (c) deleting files recovers the space for new writes.
func TestENOSPCLeavesConsistentState(t *testing.T) {
	r := newRig(t, 96, 64)
	var created []string
	data := randBytes(77, 4*BlockSize)
	for i := 0; ; i++ {
		name := fmt.Sprintf("fill%03d", i)
		err := r.f.WriteFile(r.ctx, name, data)
		if err == nil {
			created = append(created, name)
			continue
		}
		if !errors.Is(err, ErrNoSpace) {
			t.Fatalf("unexpected failure: %v", err)
		}
		break
	}
	if len(created) == 0 {
		t.Fatal("nothing was created before exhaustion")
	}
	if err := r.f.Fsck(r.ctx); err != nil {
		t.Fatalf("fsck after ENOSPC: %v", err)
	}
	// Every successfully created file must still read back intact.
	got := make([]byte, len(data))
	for _, name := range created {
		if err := r.f.ReadAt(r.ctx, name, 0, got); err != nil {
			t.Fatalf("read %s after ENOSPC: %v", name, err)
		}
	}
	// Free half the files; writes must succeed again.
	for i := 0; i < len(created)/2; i++ {
		if err := r.f.Delete(r.ctx, created[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.f.WriteFile(r.ctx, "after", data); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if err := r.f.Fsck(r.ctx); err != nil {
		t.Fatalf("final fsck: %v", err)
	}
}

// TestAppendENOSPCKeepsPrefixReadable: a failed append must not corrupt
// the bytes that were already in the file.
func TestAppendENOSPCKeepsPrefixReadable(t *testing.T) {
	r := newRig(t, 64, 16)
	prefix := randBytes(5, 2*BlockSize)
	if err := r.f.WriteFile(r.ctx, "log", prefix); err != nil {
		t.Fatal(err)
	}
	// Append until the disk fills.
	chunk := randBytes(6, BlockSize)
	for {
		if err := r.f.Append(r.ctx, "log", chunk); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("unexpected append failure: %v", err)
			}
			break
		}
	}
	got := make([]byte, len(prefix))
	if err := r.f.ReadAt(r.ctx, "log", 0, got); err != nil {
		t.Fatal(err)
	}
	for i := range prefix {
		if got[i] != prefix[i] {
			t.Fatalf("prefix byte %d corrupted after failed append", i)
		}
	}
}

// TestMountAfterChurnMatchesLiveState runs a PostMark-like churn, then
// mounts a second FS instance from the same disk and verifies the two
// agree on every file's name, size and content.
func TestMountAfterChurnMatchesLiveState(t *testing.T) {
	r := newRig(t, 512, 128)
	rng := rand.New(rand.NewSource(31))
	live := map[string][]byte{}
	for i := 0; i < 150; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			name := fmt.Sprintf("c%04d", i)
			data := randBytes(int64(i), rng.Intn(3*BlockSize)+1)
			if err := r.f.WriteFile(r.ctx, name, data); err != nil {
				if errors.Is(err, ErrNoSpace) || errors.Is(err, ErrNoInodes) {
					continue
				}
				t.Fatal(err)
			}
			live[name] = data
		case 2:
			for name := range live {
				if err := r.f.Delete(r.ctx, name); err != nil {
					t.Fatal(err)
				}
				delete(live, name)
				break
			}
		}
	}
	f2, err := Mount(r.ctx, r.k, r.d)
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumFiles() != len(live) {
		t.Fatalf("mounted fs sees %d files, live state has %d", f2.NumFiles(), len(live))
	}
	for name, want := range live {
		sz, err := f2.Size(r.ctx, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sz != int64(len(want)) {
			t.Fatalf("%s: size %d, want %d", name, sz, len(want))
		}
		got := make([]byte, len(want))
		if err := f2.ReadAt(r.ctx, name, 0, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: byte %d differs after mount", name, i)
			}
		}
	}
	if err := f2.Fsck(r.ctx); err != nil {
		t.Fatal(err)
	}
	// The remounted instance must also agree on free-slot accounting:
	// creating through it reuses slots without growing the directory.
	ents := f2.dirEnts
	if err := f2.Create(r.ctx, "post-mount"); err != nil {
		t.Fatal(err)
	}
	if len(live) < ents && f2.dirEnts != ents {
		t.Fatalf("directory grew from %d to %d despite free slots", ents, f2.dirEnts)
	}
}

// TestPhysExhaustionDuringMkfs: creating a memory disk larger than
// physical memory must fail cleanly, not panic.
func TestPhysExhaustionDuringMkfs(t *testing.T) {
	r := newRig(t, 64, 16) // rig machine has diskBlocks+64 pages
	// The rig's disk consumed most pages; another huge disk must fail.
	if _, err := memdiskNew(r, 1<<30); err == nil {
		t.Fatal("oversized disk allocation must fail")
	}
}
