// Package fs implements a small block filesystem on a memory disk.  It is
// the substrate for the PostMark experiments (Figures 8-10) and the web
// server's document store: every data and metadata block access goes
// through the memory disk's read/write path, which creates and destroys an
// ephemeral mapping per block — the traffic pattern whose cost the paper
// measures.
//
// The design is a deliberately classical Unix layout:
//
//	block 0:            superblock
//	blocks 1..b:        block allocation bitmap
//	blocks b+1..b+i:    inode table (64-byte inodes, 64 per block)
//	remaining blocks:   data
//
// Inode 0 is the root directory, a flat file of 64-byte entries.  A
// directory name cache (the dcache) is kept in memory and rebuilt from
// disk on mount; all other metadata is read and written through the disk.
package fs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// Geometry constants.
const (
	// BlockSize equals the page size so a file block corresponds to one
	// disk page, which is what lets sendfile map file pages directly.
	BlockSize = vm.PageSize
	// InodeSize is the on-disk inode footprint.
	InodeSize = 64
	// InodesPerBlock derives from the two sizes.
	InodesPerBlock = BlockSize / InodeSize
	// NDirect is the number of direct block pointers per inode.
	NDirect = 12
	// PtrsPerBlock is the fan-out of an indirect block.
	PtrsPerBlock = BlockSize / 4
	// DirEntrySize is the on-disk directory entry footprint.
	DirEntrySize = 64
	// MaxNameLen is the longest allowed file name.
	MaxNameLen = DirEntrySize - 5 // 4-byte inode number + NUL guarantee
	// Magic identifies a formatted volume.
	Magic = 0x5F5B0F55 // "SFBuF FS"
)

// MaxFileBlocks is the largest file the inode geometry can address.
const MaxFileBlocks = NDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock

// Errors.
var (
	ErrNotFound    = errors.New("fs: file not found")
	ErrExists      = errors.New("fs: file already exists")
	ErrNoSpace     = errors.New("fs: out of data blocks")
	ErrNoInodes    = errors.New("fs: out of inodes")
	ErrNameTooLong = errors.New("fs: name too long")
	ErrBadVolume   = errors.New("fs: bad superblock")
	ErrFileTooBig  = errors.New("fs: file exceeds maximum size")
)

// inode is the in-memory form of an on-disk inode.
type inode struct {
	Size     uint64
	Direct   [NDirect]uint32
	Indirect uint32
	Double   uint32
}

func (ino *inode) encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:], ino.Size)
	for i, d := range ino.Direct {
		binary.LittleEndian.PutUint32(b[8+4*i:], d)
	}
	binary.LittleEndian.PutUint32(b[8+4*NDirect:], ino.Indirect)
	binary.LittleEndian.PutUint32(b[12+4*NDirect:], ino.Double)
}

func (ino *inode) decode(b []byte) {
	ino.Size = binary.LittleEndian.Uint64(b[0:])
	for i := range ino.Direct {
		ino.Direct[i] = binary.LittleEndian.Uint32(b[8+4*i:])
	}
	ino.Indirect = binary.LittleEndian.Uint32(b[8+4*NDirect:])
	ino.Double = binary.LittleEndian.Uint32(b[12+4*NDirect:])
}

// dirSlot records where a name lives in the directory file.
type dirSlot struct {
	ino  uint32
	slot int // entry index within the directory file
}

// FS is a mounted filesystem.
type FS struct {
	k *kernel.Kernel
	d *memdisk.Disk

	mu sync.Mutex

	totalBlocks  int
	bitmapBlocks int
	inodeBlocks  int
	dataStart    int
	maxInodes    int

	// bitmap mirrors the on-disk allocation bitmap; mutations write the
	// containing bitmap block through to disk.
	bitmap     []uint64
	freeBlocks int

	// inodeUsed mirrors inode liveness (an inode is live when it appears
	// in the directory; inode 0 is always the root directory).
	inodeUsed []bool

	// dcache maps names to directory slots; rebuilt from disk on mount.
	dcache  map[string]dirSlot
	dirEnts int // directory file entry count (including free slots)
	// freeSlots stacks directory slots vacated by deletions for O(1)
	// reuse by the next creation.
	freeSlots []int

	// bufPool recycles block-sized scratch buffers for metadata I/O;
	// protected by mu like everything else that uses them.
	bufPool [][]byte
}

// Mkfs formats the disk and returns the mounted filesystem.  maxInodes
// bounds the file count (rounded up to a whole inode block).
func Mkfs(ctx *smp.Context, k *kernel.Kernel, d *memdisk.Disk, maxInodes int) (*FS, error) {
	if maxInodes <= 0 {
		return nil, fmt.Errorf("fs: invalid inode count %d", maxInodes)
	}
	total := int(d.Size() / BlockSize)
	inodeBlocks := (maxInodes + InodesPerBlock - 1) / InodesPerBlock
	bitmapBlocks := (total + BlockSize*8 - 1) / (BlockSize * 8)
	dataStart := 1 + bitmapBlocks + inodeBlocks
	if dataStart+8 > total {
		return nil, fmt.Errorf("fs: disk too small: %d blocks, %d of metadata", total, dataStart)
	}
	f := &FS{
		k:            k,
		d:            d,
		totalBlocks:  total,
		bitmapBlocks: bitmapBlocks,
		inodeBlocks:  inodeBlocks,
		dataStart:    dataStart,
		maxInodes:    inodeBlocks * InodesPerBlock,
		bitmap:       make([]uint64, (total+63)/64),
		inodeUsed:    make([]bool, inodeBlocks*InodesPerBlock),
		dcache:       make(map[string]dirSlot),
	}
	// Mark the metadata region allocated.
	for blk := 0; blk < dataStart; blk++ {
		f.bitmap[blk/64] |= 1 << (blk % 64)
	}
	f.freeBlocks = total - dataStart

	// Write the superblock.
	sb := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(sb[0:], Magic)
	binary.LittleEndian.PutUint32(sb[4:], uint32(total))
	binary.LittleEndian.PutUint32(sb[8:], uint32(bitmapBlocks))
	binary.LittleEndian.PutUint32(sb[12:], uint32(inodeBlocks))
	if err := f.writeBlock(ctx, 0, sb); err != nil {
		return nil, err
	}
	// Write the bitmap.
	if err := f.flushBitmapAll(ctx); err != nil {
		return nil, err
	}
	// Zero the inode table.
	zero := make([]byte, BlockSize)
	for i := 0; i < inodeBlocks; i++ {
		if err := f.writeBlock(ctx, 1+bitmapBlocks+i, zero); err != nil {
			return nil, err
		}
	}
	// Inode 0 is the (initially empty) root directory.
	f.inodeUsed[0] = true
	if err := f.writeInode(ctx, 0, &inode{}); err != nil {
		return nil, err
	}
	return f, nil
}

// Mount reads the superblock, bitmap and root directory of a previously
// formatted disk and returns the filesystem.
func Mount(ctx *smp.Context, k *kernel.Kernel, d *memdisk.Disk) (*FS, error) {
	sb := make([]byte, BlockSize)
	f := &FS{k: k, d: d}
	if err := f.readBlock(ctx, 0, sb); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(sb[0:]) != Magic {
		return nil, ErrBadVolume
	}
	f.totalBlocks = int(binary.LittleEndian.Uint32(sb[4:]))
	f.bitmapBlocks = int(binary.LittleEndian.Uint32(sb[8:]))
	f.inodeBlocks = int(binary.LittleEndian.Uint32(sb[12:]))
	f.dataStart = 1 + f.bitmapBlocks + f.inodeBlocks
	f.maxInodes = f.inodeBlocks * InodesPerBlock
	f.bitmap = make([]uint64, (f.totalBlocks+63)/64)
	f.inodeUsed = make([]bool, f.maxInodes)
	f.dcache = make(map[string]dirSlot)

	// Read the bitmap.
	buf := make([]byte, BlockSize)
	for i := 0; i < f.bitmapBlocks; i++ {
		if err := f.readBlock(ctx, 1+i, buf); err != nil {
			return nil, err
		}
		for j := 0; j < BlockSize/8; j++ {
			idx := i*(BlockSize/8) + j
			if idx < len(f.bitmap) {
				f.bitmap[idx] = binary.LittleEndian.Uint64(buf[8*j:])
			}
		}
	}
	f.freeBlocks = 0
	for blk := f.dataStart; blk < f.totalBlocks; blk++ {
		if f.bitmap[blk/64]&(1<<(blk%64)) == 0 {
			f.freeBlocks++
		}
	}

	// Rebuild the dcache from the root directory.
	f.inodeUsed[0] = true
	root, err := f.readInode(ctx, 0)
	if err != nil {
		return nil, err
	}
	f.dirEnts = int(root.Size) / DirEntrySize
	ent := make([]byte, DirEntrySize)
	for slot := 0; slot < f.dirEnts; slot++ {
		if err := f.readRange(ctx, root, int64(slot)*DirEntrySize, ent); err != nil {
			return nil, err
		}
		ino := binary.LittleEndian.Uint32(ent[0:])
		if ino == 0 {
			f.freeSlots = append(f.freeSlots, slot)
			continue // free slot
		}
		name := decodeName(ent[4:])
		f.dcache[name] = dirSlot{ino: ino, slot: slot}
		f.inodeUsed[ino] = true
	}
	return f, nil
}

func decodeName(b []byte) string {
	n := 0
	for n < len(b) && b[n] != 0 {
		n++
	}
	return string(b[:n])
}

// getBlockBuf returns a block-sized scratch buffer (contents undefined);
// putBlockBuf recycles it.  Metadata paths run under mu, so the pool needs
// no locking of its own.
func (f *FS) getBlockBuf() []byte {
	if n := len(f.bufPool); n > 0 {
		b := f.bufPool[n-1]
		f.bufPool = f.bufPool[:n-1]
		return b
	}
	return make([]byte, BlockSize)
}

func (f *FS) putBlockBuf(b []byte) { f.bufPool = append(f.bufPool, b) }

// --- raw block I/O (each call is one memory-disk operation, i.e. one
// ephemeral mapping creation and destruction) ---

func (f *FS) readBlock(ctx *smp.Context, blk int, dst []byte) error {
	return f.d.ReadAt(ctx, dst[:BlockSize], int64(blk)*BlockSize)
}

func (f *FS) writeBlock(ctx *smp.Context, blk int, src []byte) error {
	return f.d.WriteAt(ctx, src[:BlockSize], int64(blk)*BlockSize)
}

// --- bitmap management ---

// allocBlock finds a free data block, marks it, writes the bitmap block
// through, and returns the block number.
func (f *FS) allocBlock(ctx *smp.Context) (uint32, error) {
	if f.freeBlocks == 0 {
		return 0, ErrNoSpace
	}
	for w := f.dataStart / 64; w < len(f.bitmap); w++ {
		if f.bitmap[w] == ^uint64(0) {
			continue
		}
		for bit := 0; bit < 64; bit++ {
			blk := w*64 + bit
			if blk < f.dataStart || blk >= f.totalBlocks {
				continue
			}
			if f.bitmap[w]&(1<<bit) == 0 {
				f.bitmap[w] |= 1 << bit
				f.freeBlocks--
				if err := f.flushBitmapFor(ctx, blk); err != nil {
					return 0, err
				}
				return uint32(blk), nil
			}
		}
	}
	return 0, ErrNoSpace
}

// freeBlock clears a block's bitmap bit and writes the bitmap through.
func (f *FS) freeBlock(ctx *smp.Context, blk uint32) error {
	b := int(blk)
	if b < f.dataStart || b >= f.totalBlocks {
		return fmt.Errorf("fs: freeing metadata or out-of-range block %d", b)
	}
	if f.bitmap[b/64]&(1<<(b%64)) == 0 {
		return fmt.Errorf("fs: double free of block %d", b)
	}
	f.bitmap[b/64] &^= 1 << (b % 64)
	f.freeBlocks++
	return f.flushBitmapFor(ctx, b)
}

// flushBitmapFor writes the single bitmap block covering blk.
func (f *FS) flushBitmapFor(ctx *smp.Context, blk int) error {
	bmBlock := blk / (BlockSize * 8)
	buf := f.getBlockBuf()
	defer f.putBlockBuf(buf)
	base := bmBlock * (BlockSize / 8)
	for j := 0; j < BlockSize/8; j++ {
		if base+j < len(f.bitmap) {
			binary.LittleEndian.PutUint64(buf[8*j:], f.bitmap[base+j])
		}
	}
	return f.writeBlock(ctx, 1+bmBlock, buf)
}

func (f *FS) flushBitmapAll(ctx *smp.Context) error {
	for i := 0; i < f.bitmapBlocks; i++ {
		if err := f.flushBitmapFor(ctx, i*BlockSize*8); err != nil {
			return err
		}
	}
	return nil
}

// --- inode I/O ---

func (f *FS) inodeLoc(ino uint32) (blk int, off int) {
	return 1 + f.bitmapBlocks + int(ino)/InodesPerBlock,
		(int(ino) % InodesPerBlock) * InodeSize
}

func (f *FS) readInode(ctx *smp.Context, ino uint32) (*inode, error) {
	blk, off := f.inodeLoc(ino)
	buf := f.getBlockBuf()
	defer f.putBlockBuf(buf)
	if err := f.readBlock(ctx, blk, buf); err != nil {
		return nil, err
	}
	n := &inode{}
	n.decode(buf[off : off+InodeSize])
	return n, nil
}

func (f *FS) writeInode(ctx *smp.Context, ino uint32, n *inode) error {
	blk, off := f.inodeLoc(ino)
	buf := f.getBlockBuf()
	defer f.putBlockBuf(buf)
	if err := f.readBlock(ctx, blk, buf); err != nil {
		return err
	}
	n.encode(buf[off : off+InodeSize])
	return f.writeBlock(ctx, blk, buf)
}

// allocInode returns a free inode number (never 0, the root directory).
func (f *FS) allocInode() (uint32, error) {
	for i := 1; i < f.maxInodes; i++ {
		if !f.inodeUsed[i] {
			f.inodeUsed[i] = true
			return uint32(i), nil
		}
	}
	return 0, ErrNoInodes
}

// --- accounting ---

// FreeBlocks returns the current free data-block count.
func (f *FS) FreeBlocks() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.freeBlocks
}

// NumFiles returns the number of live files (excluding the root
// directory).
func (f *FS) NumFiles() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.dcache)
}

// List returns the live file names in unspecified order.
func (f *FS) List() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.dcache))
	for name := range f.dcache {
		out = append(out, name)
	}
	return out
}
