package fs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/smp"
)

type rig struct {
	k   *kernel.Kernel
	d   *memdisk.Disk
	f   *FS
	ctx *smp.Context
}

func newRig(t *testing.T, diskBlocks, maxInodes int) *rig {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     arch.XeonMP(),
		Mapper:       kernel.SFBuf,
		PhysPages:    diskBlocks + 64,
		Backed:       true,
		CacheEntries: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := memdisk.New(k, int64(diskBlocks)*BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := k.Ctx(0)
	f, err := Mkfs(ctx, k, d, maxInodes)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, d: d, f: f, ctx: ctx}
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestCreateWriteRead(t *testing.T) {
	r := newRig(t, 256, 64)
	want := randBytes(1, 10000)
	if err := r.f.WriteFile(r.ctx, "hello.dat", want); err != nil {
		t.Fatal(err)
	}
	sz, err := r.f.Size(r.ctx, "hello.dat")
	if err != nil || sz != 10000 {
		t.Fatalf("size = (%d, %v)", sz, err)
	}
	got := make([]byte, 10000)
	if err := r.f.ReadAt(r.ctx, "hello.dat", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("file data corrupted")
	}
	if err := r.f.Fsck(r.ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCreateExistsAndDelete(t *testing.T) {
	r := newRig(t, 128, 16)
	if err := r.f.Create(r.ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Create(r.ctx, "a"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
	if err := r.f.Delete(r.ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Delete(r.ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if r.f.NumFiles() != 0 {
		t.Fatal("file count wrong")
	}
}

func TestDeleteFreesBlocks(t *testing.T) {
	r := newRig(t, 256, 16)
	free := r.f.FreeBlocks()
	if err := r.f.WriteFile(r.ctx, "big", randBytes(2, 30*BlockSize)); err != nil {
		t.Fatal(err)
	}
	if r.f.FreeBlocks() >= free {
		t.Fatal("write did not consume blocks")
	}
	if err := r.f.Delete(r.ctx, "big"); err != nil {
		t.Fatal(err)
	}
	// Directory growth may retain a block; data + indirect blocks must
	// all come back.
	if got := r.f.FreeBlocks(); got < free-1 {
		t.Fatalf("free = %d, want >= %d", got, free-1)
	}
	if err := r.f.Fsck(r.ctx); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAcrossBlockBoundaries(t *testing.T) {
	r := newRig(t, 256, 16)
	if err := r.f.Create(r.ctx, "log"); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 40; i++ {
		chunk := randBytes(int64(i), 321)
		if err := r.f.Append(r.ctx, "log", chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	got := make([]byte, len(want))
	if err := r.f.ReadAt(r.ctx, "log", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("append sequence corrupted data")
	}
}

func TestIndirectBlocks(t *testing.T) {
	// A file bigger than NDirect blocks exercises the single-indirect
	// path; make it span into the indirect range with a non-block-aligned
	// tail.
	r := newRig(t, 512, 16)
	n := (NDirect+20)*BlockSize + 777
	want := randBytes(3, n)
	if err := r.f.WriteFile(r.ctx, "big", want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	if err := r.f.ReadAt(r.ctx, "big", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("indirect file corrupted")
	}
	if err := r.f.Fsck(r.ctx); err != nil {
		t.Fatal(err)
	}
	// Delete must free the indirect block too.
	if err := r.f.Delete(r.ctx, "big"); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Fsck(r.ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleIndirectBlocks(t *testing.T) {
	r := newRig(t, 2200, 16)
	n := (NDirect + PtrsPerBlock + 5) * BlockSize
	want := randBytes(4, n)
	if err := r.f.WriteFile(r.ctx, "huge", want); err != nil {
		t.Fatal(err)
	}
	// Spot-check via offset reads rather than one huge read.
	for _, off := range []int64{0, int64(NDirect) * BlockSize, int64(NDirect+PtrsPerBlock) * BlockSize, int64(n) - 99} {
		got := make([]byte, 99)
		if err := r.f.ReadAt(r.ctx, "huge", off, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[off:off+99]) {
			t.Fatalf("mismatch at offset %d", off)
		}
	}
	if err := r.f.Fsck(r.ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Delete(r.ctx, "huge"); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Fsck(r.ctx); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfSpace(t *testing.T) {
	r := newRig(t, 64, 16)
	err := r.f.WriteFile(r.ctx, "toobig", make([]byte, 200*BlockSize))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestOutOfInodes(t *testing.T) {
	r := newRig(t, 512, 2) // rounds up to one inode block = 64 inodes
	var err error
	for i := 0; i < r.f.maxInodes+2; i++ {
		err = r.f.Create(r.ctx, fmt.Sprintf("f%d", i))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrNoInodes) {
		t.Fatalf("err = %v, want ErrNoInodes", err)
	}
}

func TestNameValidation(t *testing.T) {
	r := newRig(t, 128, 16)
	long := make([]byte, MaxNameLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if err := r.f.Create(r.ctx, string(long)); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("err = %v, want ErrNameTooLong", err)
	}
	if err := r.f.Create(r.ctx, ""); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("err = %v, want ErrNameTooLong", err)
	}
}

func TestMountRebuildsState(t *testing.T) {
	r := newRig(t, 256, 32)
	want := randBytes(5, 3*BlockSize+10)
	if err := r.f.WriteFile(r.ctx, "persist", want); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Create(r.ctx, "empty"); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Delete(r.ctx, "empty"); err != nil {
		t.Fatal(err)
	}

	// Re-mount from the same disk: the dcache and bitmap must rebuild.
	f2, err := Mount(r.ctx, r.k, r.d)
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumFiles() != 1 {
		t.Fatalf("files after mount = %d, want 1", f2.NumFiles())
	}
	got := make([]byte, len(want))
	if err := f2.ReadAt(r.ctx, "persist", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost across mount")
	}
	if f2.FreeBlocks() != r.f.FreeBlocks() {
		t.Fatalf("free blocks: mounted %d vs live %d", f2.FreeBlocks(), r.f.FreeBlocks())
	}
	if err := f2.Fsck(r.ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMountRejectsUnformattedDisk(t *testing.T) {
	k := kernel.MustBoot(kernel.Config{
		Platform: arch.XeonUP(), Mapper: kernel.SFBuf, PhysPages: 128, Backed: true, CacheEntries: 32,
	})
	d, _ := memdisk.New(k, 64*BlockSize)
	if _, err := Mount(k.Ctx(0), k, d); !errors.Is(err, ErrBadVolume) {
		t.Fatalf("err = %v, want ErrBadVolume", err)
	}
}

func TestReadFullInUnits(t *testing.T) {
	r := newRig(t, 256, 16)
	want := randBytes(6, 9777) // PostMark's maximum file size
	if err := r.f.WriteFile(r.ctx, "pm", want); err != nil {
		t.Fatal(err)
	}
	n, err := r.f.ReadFull(r.ctx, "pm", 512)
	if err != nil || n != 9777 {
		t.Fatalf("ReadFull = (%d, %v)", n, err)
	}
}

func TestFilePageResolvesDiskPage(t *testing.T) {
	r := newRig(t, 256, 16)
	want := randBytes(7, 2*BlockSize)
	if err := r.f.WriteFile(r.ctx, "sf", want); err != nil {
		t.Fatal(err)
	}
	pg, err := r.f.FilePage(r.ctx, "sf", 1)
	if err != nil {
		t.Fatal(err)
	}
	// The page's raw contents must be the file's second block.
	if !bytes.Equal(pg.Data(), want[BlockSize:2*BlockSize]) {
		t.Fatal("FilePage returned the wrong disk page")
	}
	// Beyond EOF fails.
	if _, err := r.f.FilePage(r.ctx, "sf", 5); err == nil {
		t.Fatal("page beyond EOF must fail")
	}
}

func TestSlotReuseAfterDelete(t *testing.T) {
	r := newRig(t, 256, 32)
	for i := 0; i < 8; i++ {
		if err := r.f.Create(r.ctx, fmt.Sprintf("f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ents := r.f.dirEnts
	r.f.Delete(r.ctx, "f3")
	if err := r.f.Create(r.ctx, "f3b"); err != nil {
		t.Fatal(err)
	}
	if r.f.dirEnts != ents {
		t.Fatalf("directory grew (%d -> %d) instead of reusing the slot", ents, r.f.dirEnts)
	}
}

// TestRandomOpsWithFsck runs a random Create/Delete/Append/Write/Read
// workload mirroring PostMark's transaction mix and validates filesystem
// invariants and file contents against an in-memory model throughout.
func TestRandomOpsWithFsck(t *testing.T) {
	r := newRig(t, 1024, 128)
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(2024))
	names := func() []string {
		out := make([]string, 0, len(model))
		for n := range model {
			out = append(out, n)
		}
		return out
	}
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || len(model) == 0: // create
			name := fmt.Sprintf("file-%d", step)
			data := randBytes(rng.Int63(), rng.Intn(3*BlockSize)+1)
			if err := r.f.WriteFile(r.ctx, name, data); err != nil {
				if errors.Is(err, ErrNoSpace) || errors.Is(err, ErrNoInodes) {
					continue
				}
				t.Fatalf("step %d create: %v", step, err)
			}
			model[name] = data
		case op == 1: // delete
			n := names()[rng.Intn(len(model))]
			if err := r.f.Delete(r.ctx, n); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(model, n)
		case op == 2: // append
			n := names()[rng.Intn(len(model))]
			data := randBytes(rng.Int63(), rng.Intn(700)+1)
			if err := r.f.Append(r.ctx, n, data); err != nil {
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				t.Fatalf("step %d append: %v", step, err)
			}
			model[n] = append(model[n], data...)
		case op == 3: // read & verify
			n := names()[rng.Intn(len(model))]
			want := model[n]
			got := make([]byte, len(want))
			if len(want) == 0 {
				continue
			}
			if err := r.f.ReadAt(r.ctx, n, 0, got); err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: content mismatch on %q", step, n)
			}
		}
		if step%50 == 49 {
			if err := r.f.Fsck(r.ctx); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := r.f.Fsck(r.ctx); err != nil {
		t.Fatal(err)
	}
}
