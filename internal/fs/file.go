package fs

import (
	"encoding/binary"
	"fmt"

	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// This file implements the file-level operations: create, delete, read,
// write/append, and the page lookups used by sendfile and the vnode pager.
// All block mapping goes through the inode's direct/indirect/double-
// indirect pointers, with every metadata block fetched through the memory
// disk (one ephemeral mapping per access).

// blockPtr resolves file block index bi of inode n, optionally allocating
// missing blocks (and indirect blocks) along the way.  It returns the disk
// block number, or 0 when the block does not exist and alloc is false.
func (f *FS) blockPtr(ctx *smp.Context, ino uint32, n *inode, bi int, alloc bool) (uint32, error) {
	if bi < 0 || bi >= MaxFileBlocks {
		return 0, ErrFileTooBig
	}
	// Direct.
	if bi < NDirect {
		if n.Direct[bi] == 0 && alloc {
			blk, err := f.allocBlock(ctx)
			if err != nil {
				return 0, err
			}
			n.Direct[bi] = blk
			if err := f.writeInode(ctx, ino, n); err != nil {
				return 0, err
			}
		}
		return n.Direct[bi], nil
	}
	bi -= NDirect
	// Single indirect.
	if bi < PtrsPerBlock {
		if n.Indirect == 0 {
			if !alloc {
				return 0, nil
			}
			blk, err := f.allocZeroedBlock(ctx)
			if err != nil {
				return 0, err
			}
			n.Indirect = blk
			if err := f.writeInode(ctx, ino, n); err != nil {
				return 0, err
			}
		}
		return f.indirectSlot(ctx, n.Indirect, bi, alloc)
	}
	bi -= PtrsPerBlock
	// Double indirect.
	if n.Double == 0 {
		if !alloc {
			return 0, nil
		}
		blk, err := f.allocZeroedBlock(ctx)
		if err != nil {
			return 0, err
		}
		n.Double = blk
		if err := f.writeInode(ctx, ino, n); err != nil {
			return 0, err
		}
	}
	l1, err := f.indirectSlot(ctx, n.Double, bi/PtrsPerBlock, alloc)
	if err != nil || l1 == 0 {
		return l1, err
	}
	return f.indirectSlot(ctx, l1, bi%PtrsPerBlock, alloc)
}

// indirectSlot reads slot idx of the indirect block blk, allocating a data
// (or next-level) block into the slot when alloc is true and it is empty.
// An allocated slot target is zero-filled when it will serve as another
// indirect block; data blocks are left as-is (file reads past what was
// written return whatever the block holds, as with a real FS without
// zero-fill guarantees for this simulator's purposes).
func (f *FS) indirectSlot(ctx *smp.Context, blk uint32, idx int, alloc bool) (uint32, error) {
	buf := f.getBlockBuf()
	defer f.putBlockBuf(buf)
	if err := f.readBlock(ctx, int(blk), buf); err != nil {
		return 0, err
	}
	ptr := binary.LittleEndian.Uint32(buf[4*idx:])
	if ptr == 0 && alloc {
		nb, err := f.allocBlock(ctx)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(buf[4*idx:], nb)
		if err := f.writeBlock(ctx, int(blk), buf); err != nil {
			return 0, err
		}
		ptr = nb
	}
	return ptr, nil
}

// allocZeroedBlock allocates a block and writes zeros to it, as required
// for fresh indirect blocks.
func (f *FS) allocZeroedBlock(ctx *smp.Context) (uint32, error) {
	blk, err := f.allocBlock(ctx)
	if err != nil {
		return 0, err
	}
	zero := f.getBlockBuf()
	defer f.putBlockBuf(zero)
	for i := range zero {
		zero[i] = 0
	}
	if err := f.writeBlock(ctx, int(blk), zero); err != nil {
		return 0, err
	}
	return blk, nil
}

// readRange reads len(dst) bytes at off from the file described by n.
func (f *FS) readRange(ctx *smp.Context, n *inode, off int64, dst []byte) error {
	if off < 0 || off+int64(len(dst)) > int64(n.Size) {
		return fmt.Errorf("fs: read [%d,%d) beyond size %d", off, off+int64(len(dst)), n.Size)
	}
	for len(dst) > 0 {
		bi := int(off / BlockSize)
		bo := int(off % BlockSize)
		c := min(BlockSize-bo, len(dst))
		blk, err := f.blockPtr(ctx, 0, n, bi, false)
		if err != nil {
			return err
		}
		if blk == 0 {
			return fmt.Errorf("fs: hole at file block %d", bi)
		}
		if err := f.d.ReadAt(ctx, dst[:c], int64(blk)*BlockSize+int64(bo)); err != nil {
			return err
		}
		dst = dst[c:]
		off += int64(c)
	}
	return nil
}

// writeRange writes src at off into inode ino (in-place and/or extending),
// allocating blocks as needed and updating the size.
func (f *FS) writeRange(ctx *smp.Context, ino uint32, n *inode, off int64, src []byte) error {
	end := off + int64(len(src))
	for len(src) > 0 {
		bi := int(off / BlockSize)
		bo := int(off % BlockSize)
		c := min(BlockSize-bo, len(src))
		blk, err := f.blockPtr(ctx, ino, n, bi, true)
		if err != nil {
			return err
		}
		if err := f.d.WriteAt(ctx, src[:c], int64(blk)*BlockSize+int64(bo)); err != nil {
			return err
		}
		src = src[c:]
		off += int64(c)
	}
	if uint64(end) > n.Size {
		n.Size = uint64(end)
		return f.writeInode(ctx, ino, n)
	}
	return nil
}

// Create makes a new empty file.
func (f *FS) Create(ctx *smp.Context, name string) error {
	ctx.Charge(ctx.Cost().VFSOpFixed)
	if len(name) == 0 || len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.dcache[name]; ok {
		return ErrExists
	}
	ino, err := f.allocInode()
	if err != nil {
		return err
	}
	if err := f.writeInode(ctx, ino, &inode{}); err != nil {
		f.inodeUsed[ino] = false
		return err
	}
	// Find a free directory slot (or append one) and write the entry.
	root, err := f.readInode(ctx, 0)
	if err != nil {
		return err
	}
	// Reuse a slot vacated by a deletion, else append a new one.
	slot := f.dirEnts
	if n := len(f.freeSlots); n > 0 {
		slot = f.freeSlots[n-1]
		f.freeSlots = f.freeSlots[:n-1]
	}
	ent := make([]byte, DirEntrySize)
	binary.LittleEndian.PutUint32(ent[0:], ino)
	copy(ent[4:], name)
	if err := f.writeRange(ctx, 0, root, int64(slot)*DirEntrySize, ent); err != nil {
		f.inodeUsed[ino] = false
		return err
	}
	if slot == f.dirEnts {
		f.dirEnts++
	}
	f.dcache[name] = dirSlot{ino: ino, slot: slot}
	return nil
}

// Delete removes a file and frees its blocks and inode.
func (f *FS) Delete(ctx *smp.Context, name string) error {
	ctx.Charge(ctx.Cost().VFSOpFixed)
	f.mu.Lock()
	defer f.mu.Unlock()
	ds, ok := f.dcache[name]
	if !ok {
		return ErrNotFound
	}
	n, err := f.readInode(ctx, ds.ino)
	if err != nil {
		return err
	}
	if err := f.truncateLocked(ctx, ds.ino, n); err != nil {
		return err
	}
	// Clear the directory slot on disk.
	root, err := f.readInode(ctx, 0)
	if err != nil {
		return err
	}
	ent := make([]byte, DirEntrySize)
	if err := f.writeRange(ctx, 0, root, int64(ds.slot)*DirEntrySize, ent); err != nil {
		return err
	}
	f.inodeUsed[ds.ino] = false
	delete(f.dcache, name)
	f.freeSlots = append(f.freeSlots, ds.slot)
	return nil
}

// truncateLocked frees every data and indirect block of an inode and
// zeroes it on disk.
func (f *FS) truncateLocked(ctx *smp.Context, ino uint32, n *inode) error {
	for i := 0; i < NDirect; i++ {
		if n.Direct[i] != 0 {
			if err := f.freeBlock(ctx, n.Direct[i]); err != nil {
				return err
			}
		}
	}
	if n.Indirect != 0 {
		if err := f.freeIndirect(ctx, n.Indirect, 1); err != nil {
			return err
		}
	}
	if n.Double != 0 {
		if err := f.freeIndirect(ctx, n.Double, 2); err != nil {
			return err
		}
	}
	return f.writeInode(ctx, ino, &inode{})
}

// freeIndirect frees an indirect block of the given depth and everything
// beneath it.
func (f *FS) freeIndirect(ctx *smp.Context, blk uint32, depth int) error {
	buf := make([]byte, BlockSize)
	if err := f.readBlock(ctx, int(blk), buf); err != nil {
		return err
	}
	for i := 0; i < PtrsPerBlock; i++ {
		ptr := binary.LittleEndian.Uint32(buf[4*i:])
		if ptr == 0 {
			continue
		}
		if depth > 1 {
			if err := f.freeIndirect(ctx, ptr, depth-1); err != nil {
				return err
			}
		} else if err := f.freeBlock(ctx, ptr); err != nil {
			return err
		}
	}
	return f.freeBlock(ctx, blk)
}

// WriteFile replaces (or creates) a file with the given contents.
func (f *FS) WriteFile(ctx *smp.Context, name string, data []byte) error {
	ctx.Charge(ctx.Cost().VFSOpFixed)
	f.mu.Lock()
	ds, ok := f.dcache[name]
	f.mu.Unlock()
	if !ok {
		if err := f.Create(ctx, name); err != nil {
			return err
		}
		f.mu.Lock()
		ds = f.dcache[name]
		f.mu.Unlock()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.readInode(ctx, ds.ino)
	if err != nil {
		return err
	}
	if n.Size > 0 {
		if err := f.truncateLocked(ctx, ds.ino, n); err != nil {
			return err
		}
		n = &inode{}
	}
	if len(data) == 0 {
		return nil
	}
	return f.writeRange(ctx, ds.ino, n, 0, data)
}

// Append extends a file with data.
func (f *FS) Append(ctx *smp.Context, name string, data []byte) error {
	ctx.Charge(ctx.Cost().VFSOpFixed)
	f.mu.Lock()
	defer f.mu.Unlock()
	ds, ok := f.dcache[name]
	if !ok {
		return ErrNotFound
	}
	n, err := f.readInode(ctx, ds.ino)
	if err != nil {
		return err
	}
	return f.writeRange(ctx, ds.ino, n, int64(n.Size), data)
}

// Size returns a file's length.
func (f *FS) Size(ctx *smp.Context, name string) (int64, error) {
	ctx.Charge(ctx.Cost().VFSOpFixed)
	f.mu.Lock()
	defer f.mu.Unlock()
	ds, ok := f.dcache[name]
	if !ok {
		return 0, ErrNotFound
	}
	n, err := f.readInode(ctx, ds.ino)
	if err != nil {
		return 0, err
	}
	return int64(n.Size), nil
}

// ReadAt fills dst from the file at off.
func (f *FS) ReadAt(ctx *smp.Context, name string, off int64, dst []byte) error {
	ctx.Charge(ctx.Cost().VFSOpFixed)
	f.mu.Lock()
	defer f.mu.Unlock()
	ds, ok := f.dcache[name]
	if !ok {
		return ErrNotFound
	}
	n, err := f.readInode(ctx, ds.ino)
	if err != nil {
		return err
	}
	return f.readRange(ctx, n, off, dst)
}

// ReadFull streams the whole file in unit-byte reads (PostMark reads files
// with a 512-byte block size), returning the total bytes read.  It avoids
// materializing the file: the same scratch buffer is reused.
func (f *FS) ReadFull(ctx *smp.Context, name string, unit int) (int64, error) {
	ctx.Charge(ctx.Cost().VFSOpFixed)
	if unit <= 0 {
		unit = BlockSize
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ds, ok := f.dcache[name]
	if !ok {
		return 0, ErrNotFound
	}
	n, err := f.readInode(ctx, ds.ino)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, unit)
	var off int64
	for off < int64(n.Size) {
		c := min(int64(unit), int64(n.Size)-off)
		if err := f.readRange(ctx, n, off, buf[:c]); err != nil {
			return off, err
		}
		off += c
	}
	return off, nil
}

// FilePage resolves the physical page backing file page index pi — the
// sendfile path: the file's block is the disk's page, which the caller
// then maps with a shared sf_buf.  The metadata walk performs real disk
// reads; the data block itself is not read (sendfile maps it instead).
func (f *FS) FilePage(ctx *smp.Context, name string, pi int) (*vm.Page, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ds, ok := f.dcache[name]
	if !ok {
		return nil, ErrNotFound
	}
	n, err := f.readInode(ctx, ds.ino)
	if err != nil {
		return nil, err
	}
	if int64(pi)*BlockSize >= int64(n.Size) {
		return nil, fmt.Errorf("fs: page %d beyond EOF of %q", pi, name)
	}
	blk, err := f.blockPtr(ctx, ds.ino, n, pi, false)
	if err != nil {
		return nil, err
	}
	if blk == 0 {
		return nil, fmt.Errorf("fs: hole at page %d of %q", pi, name)
	}
	return f.d.PageAt(int64(blk) * BlockSize)
}

// BlockOf returns the disk block number backing file page pi, for the
// vnode pager.
func (f *FS) BlockOf(ctx *smp.Context, name string, pi int) (uint32, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ds, ok := f.dcache[name]
	if !ok {
		return 0, ErrNotFound
	}
	n, err := f.readInode(ctx, ds.ino)
	if err != nil {
		return 0, err
	}
	return f.blockPtr(ctx, ds.ino, n, pi, false)
}

// Fsck verifies filesystem invariants: every live block is referenced by
// exactly one file (or the directory), every referenced block is marked
// allocated, and free-count accounting matches the bitmap.  Tests call it
// after random operation sequences.
func (f *FS) Fsck(ctx *smp.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	refs := make(map[uint32]int)
	walk := func(ino uint32) error {
		n, err := f.readInode(ctx, ino)
		if err != nil {
			return err
		}
		blocks := int((n.Size + BlockSize - 1) / BlockSize)
		for bi := 0; bi < blocks; bi++ {
			blk, err := f.blockPtr(ctx, ino, n, bi, false)
			if err != nil {
				return err
			}
			if blk == 0 {
				return fmt.Errorf("fs: fsck: inode %d has a hole at %d", ino, bi)
			}
			refs[blk]++
		}
		if n.Indirect != 0 {
			refs[n.Indirect]++
		}
		if n.Double != 0 {
			refs[n.Double]++
			buf := make([]byte, BlockSize)
			if err := f.readBlock(ctx, int(n.Double), buf); err != nil {
				return err
			}
			for i := 0; i < PtrsPerBlock; i++ {
				if p := binary.LittleEndian.Uint32(buf[4*i:]); p != 0 {
					refs[p]++
				}
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return err
	}
	for name, ds := range f.dcache {
		if err := walk(ds.ino); err != nil {
			return fmt.Errorf("%w (file %q)", err, name)
		}
	}
	for blk, c := range refs {
		if c != 1 {
			return fmt.Errorf("fs: fsck: block %d referenced %d times", blk, c)
		}
		if f.bitmap[blk/64]&(1<<(blk%64)) == 0 {
			return fmt.Errorf("fs: fsck: referenced block %d is marked free", blk)
		}
	}
	free := 0
	for blk := f.dataStart; blk < f.totalBlocks; blk++ {
		if f.bitmap[blk/64]&(1<<(blk%64)) == 0 {
			free++
		} else if refs[uint32(blk)] == 0 {
			return fmt.Errorf("fs: fsck: block %d allocated but unreferenced", blk)
		}
	}
	if free != f.freeBlocks {
		return fmt.Errorf("fs: fsck: free count %d, bitmap says %d", f.freeBlocks, free)
	}
	return nil
}
