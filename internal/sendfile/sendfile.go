// Package sendfile implements the zero-copy sendfile(2) path of
// Section 2.3: the pages of a file are wired, mapped with shared ephemeral
// mappings (any CPU may retransmit them), attached to an mbuf chain and
// handed to the socket; the mappings persist until the chain is freed by
// acknowledgment.
package sendfile

import (
	"fmt"

	"sfbuf/internal/fs"
	"sfbuf/internal/kernel"
	"sfbuf/internal/mbuf"
	"sfbuf/internal/netstack"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// SendFile transmits the whole named file over conn, returning the bytes
// sent.  Pages are resolved through the filesystem (real metadata I/O),
// wired, mapped shared, and queued; release happens on TCP
// acknowledgment inside the connection.
func SendFile(ctx *smp.Context, k *kernel.Kernel, fsys *fs.FS, conn *netstack.Conn, name string) (int64, error) {
	size, err := fsys.Size(ctx, name)
	if err != nil {
		return 0, err
	}
	ctx.Charge(ctx.Cost().Syscall)
	var sent int64
	for off := int64(0); off < size; {
		pi := int(off / vm.PageSize)
		pg, err := fsys.FilePage(ctx, name, pi)
		if err != nil {
			return sent, fmt.Errorf("sendfile: resolving page %d of %q: %w", pi, name, err)
		}
		pg.Wire()
		ctx.Charge(ctx.Cost().PageWire)
		b, err := k.Map.Alloc(ctx, pg, 0) // shared mapping
		if err != nil {
			pg.Unwire()
			return sent, fmt.Errorf("sendfile: mapping page: %w", err)
		}
		po := int(off % vm.PageSize)
		n := int(min64(vm.PageSize-int64(po), size-off))
		page := pg
		ext := mbuf.NewExt(b, pg, func(fctx *smp.Context) {
			k.Map.Free(fctx, b)
			page.Unwire()
		})
		chain := &mbuf.Chain{}
		chain.Append(mbuf.NewExtMbuf(ext, po, n))
		if err := conn.SendChain(ctx, chain); err != nil {
			return sent, err
		}
		off += int64(n)
		sent += int64(n)
	}
	return sent, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
