// Package sendfile implements the zero-copy sendfile(2) path of
// Section 2.3: the pages of a file are wired, mapped with shared ephemeral
// mappings (any CPU may retransmit them), attached to an mbuf chain and
// handed to the socket; the mappings persist until the chain is freed by
// acknowledgment.
package sendfile

import (
	"errors"
	"fmt"

	"sfbuf/internal/fs"
	"sfbuf/internal/kernel"
	"sfbuf/internal/mbuf"
	"sfbuf/internal/netstack"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// VectoredRun is the historical fixed cap on how many file pages one
// AllocBatch maps ahead of transmission on the vectored path.  It is now
// the DEFAULT window only: each connection carries a kernel.SendWindow
// that sizes windows from the connection's observed ACK cadence on
// adaptive kernels (kernel.DefaultSendWindowPages == VectoredRun, so
// non-adaptive kernels behave exactly as before).  The send window
// already bounds how many mappings stay live awaiting acknowledgments;
// the mapping window rides on top of that, so it is kept small enough
// that window + run cannot strain even a test-sized mapping cache.
const VectoredRun = kernel.DefaultSendWindowPages

// SendFile transmits the whole named file over conn, returning the bytes
// sent.  Pages are resolved through the filesystem (real metadata I/O),
// wired, mapped shared, and queued; release happens on TCP
// acknowledgment inside the connection.
//
// On kernels whose mapper batches natively the pages are mapped in
// windows (one AllocRun or AllocBatch per window, released when the
// window's last byte is acknowledged); which of the two each window
// takes is the sendfile consumer's contiguity decision — static under a
// pinned Contig policy, learned per window from the file extents'
// observed reuse under the adaptive one.  Packetization is unchanged
// either way, so the network-side costs are identical and only the
// mapping-side lock, walk and shootdown economy differs.  The original
// kernel keeps the historical per-page allocation its evaluation
// baselines measured.
func SendFile(ctx *smp.Context, k *kernel.Kernel, fsys *fs.FS, conn *netstack.Conn, name string) (int64, error) {
	size, err := fsys.Size(ctx, name)
	if err != nil {
		return 0, err
	}
	ctx.Charge(ctx.Cost().Syscall)
	if k.UseRunsSend() || k.UseVectoredSend() {
		return sendFileWindowed(ctx, k, fsys, conn, name, size,
			k.Consumer("sendfile").MapSendExtent)
	}
	var sent int64
	for off := int64(0); off < size; {
		pi := int(off / vm.PageSize)
		pg, err := fsys.FilePage(ctx, name, pi)
		if err != nil {
			return sent, fmt.Errorf("sendfile: resolving page %d of %q: %w", pi, name, err)
		}
		pg.Wire()
		ctx.Charge(ctx.Cost().PageWire)
		b, err := k.Map.Alloc(ctx, pg, 0) // shared mapping
		if err != nil {
			pg.Unwire()
			return sent, fmt.Errorf("sendfile: mapping page: %w", err)
		}
		po := int(off % vm.PageSize)
		n := int(min64(vm.PageSize-int64(po), size-off))
		page := pg
		ext := mbuf.NewExt(b, pg, func(fctx *smp.Context) {
			k.Map.Free(fctx, b)
			page.Unwire()
		})
		chain := &mbuf.Chain{}
		chain.Append(mbuf.NewExtMbuf(ext, po, n))
		if err := conn.SendChain(ctx, chain); err != nil {
			return sent, err
		}
		off += int64(n)
		sent += int64(n)
	}
	return sent, nil
}

// windowMapper maps one wired page run for a windowed send, returning
// the per-page buffers to attach and the shared release state (one
// reference per page, the last drop unmapping the whole window).  It
// returns sfbuf.ErrBatchTooLarge unwrapped when the run exceeds the
// mapping cache, which sends the window through the per-page fallback.
type windowMapper func(ctx *smp.Context, pages []*vm.Page) ([]*sfbuf.Buf, *mbuf.RunRelease, error)

// sendFileWindowed is the shared windowed-send loop behind the vectored
// and contiguous-run paths: resolve and wire a run of file pages, map
// the run with mapRun, then hand the pages to the socket one chain per
// page exactly as the per-page path does.  Each page's release on
// acknowledgment drops one run reference; the last drop unmaps the whole
// window.  A window wider than the whole mapping cache falls back to
// per-page mappings rather than failing the send.
func sendFileWindowed(ctx *smp.Context, k *kernel.Kernel, fsys *fs.FS, conn *netstack.Conn, name string, size int64, mapRun windowMapper) (int64, error) {
	var sent int64
	for off := int64(0); off < size; {
		pi := int(off / vm.PageSize)
		n := int((size-1)/vm.PageSize) - pi + 1
		// Window size is the connection's adaptive decision (the
		// historical fixed VectoredRun on non-adaptive kernels),
		// re-consulted per window so a long file adapts mid-transfer.
		if w := conn.SendWindowPages(); n > w {
			n = w
		}
		pages := make([]*vm.Page, 0, n)
		unwire := func() {
			for _, pg := range pages {
				pg.Unwire()
			}
		}
		for j := 0; j < n; j++ {
			pg, err := fsys.FilePage(ctx, name, pi+j)
			if err != nil {
				unwire()
				return sent, fmt.Errorf("sendfile: resolving page %d of %q: %w", pi+j, name, err)
			}
			pg.Wire()
			ctx.Charge(ctx.Cost().PageWire)
			pages = append(pages, pg)
		}
		bufs, rel, err := mapRun(ctx, pages)
		if errors.Is(err, sfbuf.ErrBatchTooLarge) {
			// The run exceeds the whole mapping cache: send these pages
			// one mapping at a time, exactly as the per-page path does.
			for j, pg := range pages {
				b, err := k.Map.Alloc(ctx, pg, 0)
				if err != nil {
					for _, rest := range pages[j:] {
						rest.Unwire()
					}
					return sent, fmt.Errorf("sendfile: mapping page: %w", err)
				}
				po := int(off % vm.PageSize)
				take := int(min64(vm.PageSize-int64(po), size-off))
				buf, page := b, pg
				ext := mbuf.NewExt(b, pg, func(fctx *smp.Context) {
					k.Map.Free(fctx, buf)
					page.Unwire()
				})
				chain := &mbuf.Chain{}
				chain.Append(mbuf.NewExtMbuf(ext, po, take))
				if err := conn.SendChain(ctx, chain); err != nil {
					for _, rest := range pages[j+1:] {
						rest.Unwire()
					}
					return sent, err
				}
				off += int64(take)
				sent += int64(take)
			}
			continue
		}
		if err != nil {
			unwire()
			return sent, fmt.Errorf("sendfile: window-mapping run: %w", err)
		}
		for j := range bufs {
			po := int(off % vm.PageSize)
			take := int(min64(vm.PageSize-int64(po), size-off))
			chain := &mbuf.Chain{}
			chain.Append(mbuf.NewExtMbuf(mbuf.NewExt(bufs[j], pages[j], rel.Unref), po, take))
			if err := conn.SendChain(ctx, chain); err != nil {
				// The failed chain released its own reference; drop the
				// ones the unsent remainder of the run still holds.
				rel.Drop(ctx, len(bufs)-j-1)
				return sent, err
			}
			off += int64(take)
			sent += int64(take)
		}
	}
	return sent, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
