package sendfile

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/fs"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/netstack"
	"sfbuf/internal/smp"
)

type rig struct {
	k    *kernel.Kernel
	fsys *fs.FS
	st   *netstack.Stack
	ctx  *smp.Context
}

func newRig(t *testing.T, mk kernel.MapperKind, plat arch.Platform) *rig {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    1024,
		Backed:       true,
		CacheEntries: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := memdisk.New(k, 512*fs.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := k.Ctx(0)
	fsys, err := fs.Mkfs(ctx, k, d, 64)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, fsys: fsys, st: netstack.NewStack(k, netstack.MTUSmall), ctx: ctx}
}

func TestSendFileDeliversFileBytes(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		r := newRig(t, mk, arch.XeonMP())
		want := make([]byte, 3*fs.BlockSize+321)
		rand.New(rand.NewSource(12)).Read(want)
		if err := r.fsys.WriteFile(r.ctx, "index.html", want); err != nil {
			t.Fatal(err)
		}

		c := r.st.NewConn()
		got := make([]byte, 0, len(want))
		done := make(chan error, 1)
		go func() {
			rctx := r.k.Ctx(1)
			buf := make([]byte, 8192)
			for len(got) < len(want) {
				n, err := c.Recv(rctx, buf)
				if err != nil {
					done <- err
					return
				}
				got = append(got, buf[:n]...)
			}
			done <- nil
		}()
		n, err := SendFile(r.ctx, r.k, r.fsys, c, "index.html")
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(want)) {
			t.Fatalf("sent %d, want %d", n, len(want))
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: sendfile corrupted data", mk)
		}
	}
}

func TestSendFileToSinkReleasesEverything(t *testing.T) {
	r := newRig(t, kernel.SFBuf, arch.XeonMPHTT())
	data := make([]byte, 10*fs.BlockSize)
	rand.New(rand.NewSource(13)).Read(data)
	if err := r.fsys.WriteFile(r.ctx, "big.bin", data); err != nil {
		t.Fatal(err)
	}
	c := r.st.NewSinkConn()
	if _, err := SendFile(r.ctx, r.k, r.fsys, c, "big.bin"); err != nil {
		t.Fatal(err)
	}
	c.Close(r.ctx)
	// Every file page must be unwired once acknowledged.
	for pi := 0; pi < 10; pi++ {
		pg, err := r.fsys.FilePage(r.ctx, "big.bin", pi)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Wired() {
			t.Fatalf("file page %d still wired after close", pi)
		}
	}
}

func TestRepeatSendFileHitsMappingCache(t *testing.T) {
	// A web server serving the same (popular) file repeatedly: after the
	// first send, the file's page mappings stay cached; subsequent sends
	// must be pure hits with zero invalidations (the Figure 17/18
	// sf_buf behaviour).
	r := newRig(t, kernel.SFBuf, arch.XeonMP())
	// Pins the mapping CACHE's reuse property; contiguous runs trade
	// that reuse for ranged translation, so hold sendfile on the cached
	// path.
	r.k.Cfg.Contig = kernel.ContigOff
	data := make([]byte, 8*fs.BlockSize)
	if err := r.fsys.WriteFile(r.ctx, "hot.html", data); err != nil {
		t.Fatal(err)
	}
	c := r.st.NewSinkConn()
	if _, err := SendFile(r.ctx, r.k, r.fsys, c, "hot.html"); err != nil {
		t.Fatal(err)
	}
	r.k.Reset()
	for i := 0; i < 20; i++ {
		if _, err := SendFile(r.ctx, r.k, r.fsys, c, "hot.html"); err != nil {
			t.Fatal(err)
		}
	}
	if l, rem := r.k.M.Counters().LocalInv.Load(), r.k.M.Counters().RemoteInvIssued.Load(); l != 0 || rem != 0 {
		t.Fatalf("invalidations on repeat sends: local %d remote %d, want 0/0", l, rem)
	}
	c.Close(r.ctx)
}

func TestOriginalKernelSendFilePaysPerPage(t *testing.T) {
	r := newRig(t, kernel.OriginalKernel, arch.XeonMP())
	data := make([]byte, 8*fs.BlockSize)
	if err := r.fsys.WriteFile(r.ctx, "f.bin", data); err != nil {
		t.Fatal(err)
	}
	c := r.st.NewSinkConn()
	c.SetWindow(4096) // tight window: acks (and frees) come per page
	r.k.Reset()
	if _, err := SendFile(r.ctx, r.k, r.fsys, c, "f.bin"); err != nil {
		t.Fatal(err)
	}
	c.Close(r.ctx)
	// Every page's mapping teardown is a global invalidation, plus the
	// filesystem's metadata I/O (inode reads) adds its own.
	if got := r.k.M.Counters().RemoteInvIssued.Load(); got < 8 {
		t.Fatalf("remote invalidations = %d, want >= 8", got)
	}
}

func TestSendFileMissingFile(t *testing.T) {
	r := newRig(t, kernel.SFBuf, arch.XeonUP())
	c := r.st.NewSinkConn()
	if _, err := SendFile(r.ctx, r.k, r.fsys, c, "nope"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestSendFileEmptyFile(t *testing.T) {
	r := newRig(t, kernel.SFBuf, arch.XeonUP())
	if err := r.fsys.Create(r.ctx, "empty"); err != nil {
		t.Fatal(err)
	}
	c := r.st.NewSinkConn()
	n, err := SendFile(r.ctx, r.k, r.fsys, c, "empty")
	if err != nil || n != 0 {
		t.Fatalf("sendfile(empty) = (%d, %v)", n, err)
	}
}

// TestSendFileTinyMappingCacheFallsBackPerRun pins the vectored
// fallback: with a cache smaller than VectoredRun, the run's AllocBatch
// fails with ErrBatchTooLarge and the pages must still flow one mapping
// at a time.
func TestSendFileTinyMappingCacheFallsBackPerRun(t *testing.T) {
	k, err := kernel.Boot(kernel.Config{
		Platform:     arch.XeonMP(),
		Mapper:       kernel.SFBuf,
		PhysPages:    1024,
		Backed:       true,
		CacheEntries: 8, // < VectoredRun (16)
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := memdisk.New(k, 512*fs.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := k.Ctx(0)
	fsys, err := fs.Mkfs(ctx, k, d, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 24*fs.BlockSize+100) // > one VectoredRun of pages
	rand.New(rand.NewSource(77)).Read(want)
	if err := fsys.WriteFile(ctx, "big.bin", want); err != nil {
		t.Fatal(err)
	}
	st := netstack.NewStack(k, netstack.MTUSmall)
	c := st.NewConn()
	got := make([]byte, 0, len(want))
	done := make(chan error, 1)
	go func() {
		n, err := SendFile(k.Ctx(1), k, fsys, c, "big.bin")
		if err == nil && n != int64(len(want)) {
			err = errors.New("short send")
		}
		done <- err
	}()
	buf := make([]byte, 8192)
	for len(got) < len(want) {
		n, err := c.Recv(ctx, buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	c.Close(ctx)
	if !bytes.Equal(got, want) {
		t.Fatal("tiny-cache sendfile corrupted data")
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		t.Fatalf("leaked mappings: allocs %d != frees %d", st.Allocs, st.Frees)
	}
}
