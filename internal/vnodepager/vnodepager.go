// Package vnodepager reproduces the vnode pager's use of ephemeral
// mappings (Section 2.6): paging to and from file systems whose block size
// is smaller than the page size.  Filling one memory page requires several
// distinct block reads, which the pager performs through an ephemeral
// mapping of the target page; writing a page back likewise reads the
// mapped page in block-sized pieces.  These mappings are shared, not
// CPU-private: the paging machinery may complete an I/O on any CPU.
package vnodepager

import (
	"fmt"

	"sfbuf/internal/kcopy"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// Pager pages between memory pages and a small-block backing store.
type Pager struct {
	k *kernel.Kernel
	d *memdisk.Disk
	// blockSize is the filesystem block size, smaller than a page.
	blockSize int
}

// New creates a pager over disk d with the given block size, which must
// divide the page size.
func New(k *kernel.Kernel, d *memdisk.Disk, blockSize int) (*Pager, error) {
	if blockSize <= 0 || vm.PageSize%blockSize != 0 || blockSize > vm.PageSize {
		return nil, fmt.Errorf("vnodepager: invalid block size %d", blockSize)
	}
	return &Pager{k: k, d: d, blockSize: blockSize}, nil
}

// BlocksPerPage returns how many backing blocks fill one page.
func (p *Pager) BlocksPerPage() int { return vm.PageSize / p.blockSize }

// GetPage fills pg from the backing blocks listed in blocks (one disk
// block number per block-sized slice of the page), through a shared
// ephemeral mapping of the target page.
func (p *Pager) GetPage(ctx *smp.Context, pg *vm.Page, blocks []uint32) error {
	if len(blocks) != p.BlocksPerPage() {
		return fmt.Errorf("vnodepager: need %d blocks, got %d", p.BlocksPerPage(), len(blocks))
	}
	b, err := p.k.Map.Alloc(ctx, pg, 0) // shared
	if err != nil {
		return err
	}
	defer p.k.Map.Free(ctx, b)
	buf := make([]byte, p.blockSize)
	for i, blk := range blocks {
		if err := p.d.ReadAt(ctx, buf, int64(blk)*int64(p.blockSize)); err != nil {
			return err
		}
		if err := kcopy.CopyIn(ctx, p.k.Pmap, b.KVA()+uint64(i*p.blockSize), buf); err != nil {
			return err
		}
	}
	return nil
}

// PutPage writes pg back to the given backing blocks through a shared
// ephemeral mapping.
func (p *Pager) PutPage(ctx *smp.Context, pg *vm.Page, blocks []uint32) error {
	if len(blocks) != p.BlocksPerPage() {
		return fmt.Errorf("vnodepager: need %d blocks, got %d", p.BlocksPerPage(), len(blocks))
	}
	b, err := p.k.Map.Alloc(ctx, pg, 0) // shared
	if err != nil {
		return err
	}
	defer p.k.Map.Free(ctx, b)
	buf := make([]byte, p.blockSize)
	for i, blk := range blocks {
		if err := kcopy.CopyOut(ctx, p.k.Pmap, buf, b.KVA()+uint64(i*p.blockSize)); err != nil {
			return err
		}
		if err := p.d.WriteAt(ctx, buf, int64(blk)*int64(p.blockSize)); err != nil {
			return err
		}
	}
	return nil
}
