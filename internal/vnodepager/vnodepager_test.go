package vnodepager

import (
	"bytes"
	"math/rand"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/vm"
)

func pagerRig(t *testing.T, mk kernel.MapperKind, blockSize int) (*kernel.Kernel, *memdisk.Disk, *Pager) {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     arch.XeonMP(),
		Mapper:       mk,
		PhysPages:    256,
		Backed:       true,
		CacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := memdisk.New(k, 64*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(k, d, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return k, d, p
}

func TestGetPutRoundTrip(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		k, d, p := pagerRig(t, mk, 512)
		ctx := k.Ctx(0)

		// Scatter a page's worth of data across 8 non-contiguous
		// 512-byte blocks, as a small-block filesystem would.
		want := make([]byte, vm.PageSize)
		rand.New(rand.NewSource(8)).Read(want)
		blocks := []uint32{3, 19, 7, 42, 11, 55, 2, 30}
		for i, blk := range blocks {
			if err := d.WriteAt(ctx, want[i*512:(i+1)*512], int64(blk)*512); err != nil {
				t.Fatal(err)
			}
		}

		pg, _ := k.M.Phys.Alloc()
		if err := p.GetPage(ctx, pg, blocks); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pg.Data(), want) {
			t.Fatalf("%v: GetPage assembled wrong data", mk)
		}

		// Page out to a different block list and verify the disk.
		outBlocks := []uint32{60, 61, 62, 63, 56, 57, 58, 59}
		if err := p.PutPage(ctx, pg, outBlocks); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 512)
		for i, blk := range outBlocks {
			if err := d.ReadAt(ctx, got, int64(blk)*512); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want[i*512:(i+1)*512]) {
				t.Fatalf("%v: PutPage block %d wrong", mk, blk)
			}
		}
	}
}

func TestBlockCountValidation(t *testing.T) {
	k, _, p := pagerRig(t, kernel.SFBuf, 1024)
	pg, _ := k.M.Phys.Alloc()
	if err := p.GetPage(k.Ctx(0), pg, []uint32{1, 2}); err == nil {
		t.Fatal("wrong block count must fail")
	}
	if p.BlocksPerPage() != 4 {
		t.Fatalf("blocks per page = %d, want 4", p.BlocksPerPage())
	}
}

func TestInvalidBlockSizes(t *testing.T) {
	k, d, _ := pagerRig(t, kernel.SFBuf, 512)
	for _, bs := range []int{0, -1, 3000, 8192} {
		if _, err := New(k, d, bs); err == nil {
			t.Fatalf("block size %d must be rejected", bs)
		}
	}
}

func TestPagerMappingsAreShared(t *testing.T) {
	// The vnode pager's mappings are not CPU-private (Section 2.6): after
	// a GetPage on CPU 0, the mapping must be valid on every CPU, which
	// we observe through the absence of extra invalidations when CPU 1
	// immediately maps the same page.
	k, d, p := pagerRig(t, kernel.SFBuf, 512)
	ctx0, ctx1 := k.Ctx(0), k.Ctx(1)
	// Make the underlying disk's mappings shared as well, so the only
	// mappings in play are shared ones (the disk's default CPU-private
	// mappings would legitimately invalidate when CPU 1 adopts them).
	d.SetPrivateMappings(false)
	pg, _ := k.M.Phys.Alloc()
	blocks := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	if err := p.GetPage(ctx0, pg, blocks); err != nil {
		t.Fatal(err)
	}
	k.Reset()
	if err := p.PutPage(ctx1, pg, blocks); err != nil {
		t.Fatal(err)
	}
	if got := k.M.Counters().LocalInv.Load(); got != 0 {
		t.Fatalf("shared pager mapping required %d local invalidations on CPU 1", got)
	}
}
