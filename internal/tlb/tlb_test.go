package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLookupMissThenHit(t *testing.T) {
	tl := New(4)
	if _, ok := tl.Lookup(10); ok {
		t.Fatal("lookup in empty TLB hit")
	}
	tl.Insert(10, 99)
	f, ok := tl.Lookup(10)
	if !ok || f != 99 {
		t.Fatalf("got (%d,%v), want (99,true)", f, ok)
	}
	s := tl.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tl := New(4)
	tl.Insert(1, 10)
	tl.Insert(1, 20)
	if f, _ := tl.Lookup(1); f != 20 {
		t.Fatalf("frame = %d, want 20", f)
	}
	if tl.Len() != 1 {
		t.Fatalf("len = %d, want 1", tl.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	tl := New(3)
	tl.Insert(1, 1)
	tl.Insert(2, 2)
	tl.Insert(3, 3)
	tl.Lookup(1) // refresh 1; 2 is now LRU
	tl.Insert(4, 4)
	if tl.Resident(2) {
		t.Fatal("entry 2 should have been evicted")
	}
	for _, vpn := range []uint64{1, 3, 4} {
		if !tl.Resident(vpn) {
			t.Fatalf("entry %d should be resident", vpn)
		}
	}
	if tl.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", tl.Stats().Evictions)
	}
}

func TestInvalidate(t *testing.T) {
	tl := New(4)
	tl.Insert(7, 70)
	if !tl.Invalidate(7) {
		t.Fatal("invalidate of resident entry returned false")
	}
	if tl.Invalidate(7) {
		t.Fatal("invalidate of absent entry returned true")
	}
	if tl.Len() != 0 {
		t.Fatalf("len = %d after invalidate", tl.Len())
	}
}

func TestFlushAll(t *testing.T) {
	tl := New(8)
	for i := uint64(0); i < 8; i++ {
		tl.Insert(i, i)
	}
	tl.FlushAll()
	if tl.Len() != 0 {
		t.Fatalf("len = %d after flush", tl.Len())
	}
	// The TLB must still work after a flush.
	tl.Insert(3, 33)
	if f, ok := tl.Lookup(3); !ok || f != 33 {
		t.Fatalf("post-flush lookup got (%d,%v)", f, ok)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	tl := New(16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		tl.Insert(uint64(rng.Intn(100)), uint64(i))
		if tl.Len() > 16 {
			t.Fatalf("len %d exceeds capacity 16", tl.Len())
		}
	}
}

// TestStaleServing pins down the property everything else depends on: a
// TLB keeps serving a translation after the "page tables" change, until it
// is explicitly invalidated.
func TestStaleServing(t *testing.T) {
	tl := New(4)
	tl.Insert(5, 50)
	// The OS now remaps vpn 5 to frame 60 but forgets to invalidate.
	if f, ok := tl.Lookup(5); !ok || f != 50 {
		t.Fatalf("TLB must keep serving the stale frame, got (%d,%v)", f, ok)
	}
	tl.Invalidate(5)
	if _, ok := tl.Lookup(5); ok {
		t.Fatal("entry served after invalidation")
	}
}

// Property: after any operation sequence, Lookup agrees with the last
// surviving Insert for each vpn, and Len never exceeds capacity.
func TestQuickAgainstReferenceModel(t *testing.T) {
	type op struct {
		Kind uint8
		VPN  uint8
		F    uint8
	}
	check := func(ops []op) bool {
		tl := New(8)
		// Reference model tracks only what MUST be true: an entry the
		// model knows is absent must miss; a present entry must either
		// match the model's frame or have been capacity-evicted.
		model := map[uint64]uint64{}
		for _, o := range ops {
			vpn, f := uint64(o.VPN%32), uint64(o.F)
			switch o.Kind % 3 {
			case 0:
				tl.Insert(vpn, f)
				model[vpn] = f
			case 1:
				tl.Invalidate(vpn)
				delete(model, vpn)
			case 2:
				if got, ok := tl.FrameOf(vpn); ok {
					want, inModel := model[vpn]
					if !inModel || got != want {
						return false
					}
				}
			}
			if tl.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeEntryLookup(t *testing.T) {
	tl := New(4)
	base := uint64(10 * SuperSpan) // aligned window
	tl.InsertLarge(base, 1000)
	for _, off := range []uint64{0, 1, SuperSpan - 1} {
		frame, ok := tl.Lookup(base + off)
		if !ok || frame != 1000+off {
			t.Fatalf("lookup(base+%d) = %d,%v, want %d", off, frame, ok, 1000+off)
		}
	}
	if _, ok := tl.Lookup(base + SuperSpan); ok {
		t.Fatal("lookup past the window must miss")
	}
	s := tl.Stats()
	if s.LargeHits != 3 || s.LargeInserts != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Inserts != 0 {
		t.Fatalf("large entries must not count as base inserts: %+v", s)
	}
	// An invlpg for ANY page of the window drops the whole large entry.
	if !tl.Invalidate(base + 5) {
		t.Fatal("invalidate within the window must hit")
	}
	if _, ok := tl.Lookup(base); ok {
		t.Fatal("large entry survived invalidation")
	}
	if tl.Stats().LargeInvalidations != 1 {
		t.Fatalf("stats = %+v", tl.Stats())
	}
}

func TestLargeEntryEvictionAndFlush(t *testing.T) {
	tl := New(4)
	for i := 0; i < LargeCap+2; i++ {
		tl.InsertLarge(uint64(i*SuperSpan), uint64(1000*i))
	}
	if tl.LargeLen() != LargeCap {
		t.Fatalf("large len = %d, want cap %d", tl.LargeLen(), LargeCap)
	}
	if tl.Stats().LargeEvictions != 2 {
		t.Fatalf("evictions = %d, want 2 (FIFO)", tl.Stats().LargeEvictions)
	}
	// FIFO: the two oldest windows are gone.
	if tl.Resident(0) || tl.Resident(SuperSpan) {
		t.Fatal("oldest large entries must have been evicted")
	}
	if !tl.Resident(2 * SuperSpan) {
		t.Fatal("younger large entry evicted out of order")
	}
	tl.FlushAll()
	if tl.LargeLen() != 0 {
		t.Fatal("flush must drop large entries")
	}
}

func TestInsertLargeRejectsUnalignedBase(t *testing.T) {
	tl := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("InsertLarge with an unaligned base must panic")
		}
	}()
	tl.InsertLarge(3, 1)
}
