// Package tlb models a per-CPU translation look-aside buffer.
//
// The model is deliberately honest about the property the paper's
// algorithms must preserve: a TLB caches translations and keeps serving
// them until it is explicitly invalidated or the entry is evicted for
// capacity.  Nothing here consults the page tables — if the operating
// system changes a mapping without invalidating, Lookup happily returns the
// stale frame, and (because the MMU model routes loads and stores through
// the returned frame) data corruption follows.  Tests rely on that to prove
// the sf_buf protocol's coherence logic rather than assume it.
package tlb

// Superpage geometry: a large TLB entry spans SuperSpan base pages (2 MB
// of 4 KB pages), the unit the amd64 direct map uses and the unit the
// simulated superpage promotion path collapses a contiguous run into.
const (
	// SuperSpanShift is log2 of the large-entry span in pages.
	SuperSpanShift = 9
	// SuperSpan is the large-entry span in base pages.
	SuperSpan = 1 << SuperSpanShift
)

// LargeCap bounds the separate large-entry array.  Real TLBs provide a
// handful of superpage entries beside the base-page array; eight is the
// Xeon-era data-TLB figure.
const LargeCap = 8

// Stats counts TLB events.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	Inserts       uint64
	Invalidations uint64 // explicit single-entry invalidations that hit
	Flushes       uint64
	Evictions     uint64 // capacity evictions

	// Large-entry (superpage) events.  A large hit also counts in Hits;
	// a large insert does not count in Inserts, so Inserts remains "base
	// TLB entries touched" — the per-page cost the promotion path avoids.
	LargeHits          uint64
	LargeInserts       uint64
	LargeInvalidations uint64
	LargeEvictions     uint64
}

type node struct {
	vpn, frame uint64
	prev, next *node
}

// TLB is a fully-associative, LRU-replacement translation cache mapping
// virtual page numbers to physical frame numbers.  It is not safe for
// concurrent use; the owning CPU serializes access (including shootdown
// handlers) with its own lock.
type TLB struct {
	capacity int
	entries  map[uint64]*node
	// LRU list: head.next is most recently used, tail.prev least.
	head, tail node
	// freeNodes recycles evicted/invalidated nodes (chained via next) so
	// a warm TLB inserts without allocating.
	freeNodes *node
	// large is the separate superpage array: at most LargeCap entries,
	// each mapping an aligned SuperSpan-page window by arithmetic from
	// its base frame.  Keyed by vpn >> SuperSpanShift; FIFO replacement.
	large      map[uint64]largeEntry
	largeOrder []uint64
	stats      Stats
}

// largeEntry is one superpage translation: the window's first vpn and the
// frame mapped there; frames within the window follow by arithmetic,
// which is what makes one entry cover the whole span.
type largeEntry struct {
	baseVPN uint64
	frame   uint64
}

// New creates a TLB with the given entry capacity.
func New(capacity int) *TLB {
	if capacity <= 0 {
		panic("tlb: capacity must be positive")
	}
	t := &TLB{
		capacity: capacity,
		entries:  make(map[uint64]*node, capacity),
	}
	t.head.next = &t.tail
	t.tail.prev = &t.head
	return t
}

// Capacity returns the entry capacity.
func (t *TLB) Capacity() int { return t.capacity }

// Len returns the number of resident entries.
func (t *TLB) Len() int { return len(t.entries) }

func (t *TLB) unlink(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (t *TLB) recycle(n *node) {
	n.prev = nil
	n.next = t.freeNodes
	t.freeNodes = n
}

func (t *TLB) newNode(vpn, frame uint64) *node {
	if n := t.freeNodes; n != nil {
		t.freeNodes = n.next
		n.vpn, n.frame = vpn, frame
		return n
	}
	return &node{vpn: vpn, frame: frame}
}

func (t *TLB) pushFront(n *node) {
	n.next = t.head.next
	n.prev = &t.head
	t.head.next.prev = n
	t.head.next = n
}

// Lookup returns the cached frame for vpn, consulting the base-page array
// first and the superpage array second.  A base-page hit refreshes the
// entry's recency.  The returned frame may be stale with respect to the
// page tables; that is the point.
func (t *TLB) Lookup(vpn uint64) (frame uint64, ok bool) {
	t.stats.Lookups++
	n, ok := t.entries[vpn]
	if ok {
		t.stats.Hits++
		t.unlink(n)
		t.pushFront(n)
		return n.frame, true
	}
	if le, ok := t.large[vpn>>SuperSpanShift]; ok && vpn >= le.baseVPN && vpn < le.baseVPN+SuperSpan {
		t.stats.Hits++
		t.stats.LargeHits++
		return le.frame + (vpn - le.baseVPN), true
	}
	t.stats.Misses++
	return 0, false
}

// Insert caches vpn -> frame, evicting the least recently used entry when
// at capacity.  Re-inserting an existing vpn updates the frame in place.
func (t *TLB) Insert(vpn, frame uint64) {
	t.stats.Inserts++
	if n, ok := t.entries[vpn]; ok {
		n.frame = frame
		t.unlink(n)
		t.pushFront(n)
		return
	}
	if len(t.entries) >= t.capacity {
		victim := t.tail.prev
		t.unlink(victim)
		delete(t.entries, victim.vpn)
		t.recycle(victim)
		t.stats.Evictions++
	}
	n := t.newNode(vpn, frame)
	t.entries[vpn] = n
	t.pushFront(n)
}

// InsertLarge caches one superpage translation: baseVPN (which must be
// SuperSpan-aligned) maps to frame, and every vpn in the window follows by
// arithmetic.  At capacity the oldest large entry is replaced (FIFO), as
// on hardware with a fixed superpage array.
func (t *TLB) InsertLarge(baseVPN, frame uint64) {
	if baseVPN&(SuperSpan-1) != 0 {
		panic("tlb: InsertLarge with unaligned base vpn")
	}
	key := baseVPN >> SuperSpanShift
	if t.large == nil {
		t.large = make(map[uint64]largeEntry, LargeCap)
	}
	if _, ok := t.large[key]; !ok {
		if len(t.large) >= LargeCap {
			victim := t.largeOrder[0]
			t.largeOrder = t.largeOrder[1:]
			delete(t.large, victim)
			t.stats.LargeEvictions++
		}
		t.largeOrder = append(t.largeOrder, key)
	}
	t.large[key] = largeEntry{baseVPN: baseVPN, frame: frame}
	t.stats.LargeInserts++
}

// Invalidate drops the entry for vpn, reporting whether one was resident
// (the model's invlpg).  An invlpg for any page of a superpage window
// drops the whole large entry, exactly as hardware specifies.
func (t *TLB) Invalidate(vpn uint64) bool {
	hit := false
	if n, ok := t.entries[vpn]; ok {
		t.stats.Invalidations++
		t.unlink(n)
		delete(t.entries, vpn)
		t.recycle(n)
		hit = true
	}
	if key := vpn >> SuperSpanShift; t.large != nil {
		if _, ok := t.large[key]; ok {
			delete(t.large, key)
			for i, k := range t.largeOrder {
				if k == key {
					t.largeOrder = append(t.largeOrder[:i], t.largeOrder[i+1:]...)
					break
				}
			}
			t.stats.LargeInvalidations++
			hit = true
		}
	}
	return hit
}

// InvalidateRange drops the entries for every vpn in vpns, returning how
// many were resident.  It models the loop a ranged-shootdown IPI handler
// runs: one interrupt, many invlpg instructions.
func (t *TLB) InvalidateRange(vpns []uint64) int {
	n := 0
	for _, vpn := range vpns {
		if t.Invalidate(vpn) {
			n++
		}
	}
	return n
}

// FlushAll empties the TLB (the model's full flush, e.g. CR3 reload).
func (t *TLB) FlushAll() {
	t.stats.Flushes++
	for n := t.head.next; n != &t.tail; {
		next := n.next
		t.recycle(n)
		n = next
	}
	clear(t.entries)
	t.head.next = &t.tail
	t.tail.prev = &t.head
	clear(t.large)
	t.largeOrder = t.largeOrder[:0]
}

// LargeLen returns the number of resident superpage entries.
func (t *TLB) LargeLen() int { return len(t.large) }

// Resident reports whether vpn is cached — by a base entry or a covering
// superpage entry — without touching recency or statistics.  Test helper.
func (t *TLB) Resident(vpn uint64) bool {
	if _, ok := t.entries[vpn]; ok {
		return true
	}
	_, ok := t.large[vpn>>SuperSpanShift]
	return ok
}

// FrameOf returns the cached frame for vpn without touching recency or
// statistics, for invariant checks.
func (t *TLB) FrameOf(vpn uint64) (uint64, bool) {
	if n, ok := t.entries[vpn]; ok {
		return n.frame, true
	}
	if le, ok := t.large[vpn>>SuperSpanShift]; ok {
		return le.frame + (vpn - le.baseVPN), true
	}
	return 0, false
}

// Stats returns a copy of the event counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the event counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }
