// Package tlb models a per-CPU translation look-aside buffer.
//
// The model is deliberately honest about the property the paper's
// algorithms must preserve: a TLB caches translations and keeps serving
// them until it is explicitly invalidated or the entry is evicted for
// capacity.  Nothing here consults the page tables — if the operating
// system changes a mapping without invalidating, Lookup happily returns the
// stale frame, and (because the MMU model routes loads and stores through
// the returned frame) data corruption follows.  Tests rely on that to prove
// the sf_buf protocol's coherence logic rather than assume it.
package tlb

// Stats counts TLB events.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	Inserts       uint64
	Invalidations uint64 // explicit single-entry invalidations that hit
	Flushes       uint64
	Evictions     uint64 // capacity evictions
}

type node struct {
	vpn, frame uint64
	prev, next *node
}

// TLB is a fully-associative, LRU-replacement translation cache mapping
// virtual page numbers to physical frame numbers.  It is not safe for
// concurrent use; the owning CPU serializes access (including shootdown
// handlers) with its own lock.
type TLB struct {
	capacity int
	entries  map[uint64]*node
	// LRU list: head.next is most recently used, tail.prev least.
	head, tail node
	// freeNodes recycles evicted/invalidated nodes (chained via next) so
	// a warm TLB inserts without allocating.
	freeNodes *node
	stats     Stats
}

// New creates a TLB with the given entry capacity.
func New(capacity int) *TLB {
	if capacity <= 0 {
		panic("tlb: capacity must be positive")
	}
	t := &TLB{
		capacity: capacity,
		entries:  make(map[uint64]*node, capacity),
	}
	t.head.next = &t.tail
	t.tail.prev = &t.head
	return t
}

// Capacity returns the entry capacity.
func (t *TLB) Capacity() int { return t.capacity }

// Len returns the number of resident entries.
func (t *TLB) Len() int { return len(t.entries) }

func (t *TLB) unlink(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (t *TLB) recycle(n *node) {
	n.prev = nil
	n.next = t.freeNodes
	t.freeNodes = n
}

func (t *TLB) newNode(vpn, frame uint64) *node {
	if n := t.freeNodes; n != nil {
		t.freeNodes = n.next
		n.vpn, n.frame = vpn, frame
		return n
	}
	return &node{vpn: vpn, frame: frame}
}

func (t *TLB) pushFront(n *node) {
	n.next = t.head.next
	n.prev = &t.head
	t.head.next.prev = n
	t.head.next = n
}

// Lookup returns the cached frame for vpn.  A hit refreshes the entry's
// recency.  The returned frame may be stale with respect to the page
// tables; that is the point.
func (t *TLB) Lookup(vpn uint64) (frame uint64, ok bool) {
	t.stats.Lookups++
	n, ok := t.entries[vpn]
	if !ok {
		t.stats.Misses++
		return 0, false
	}
	t.stats.Hits++
	t.unlink(n)
	t.pushFront(n)
	return n.frame, true
}

// Insert caches vpn -> frame, evicting the least recently used entry when
// at capacity.  Re-inserting an existing vpn updates the frame in place.
func (t *TLB) Insert(vpn, frame uint64) {
	t.stats.Inserts++
	if n, ok := t.entries[vpn]; ok {
		n.frame = frame
		t.unlink(n)
		t.pushFront(n)
		return
	}
	if len(t.entries) >= t.capacity {
		victim := t.tail.prev
		t.unlink(victim)
		delete(t.entries, victim.vpn)
		t.recycle(victim)
		t.stats.Evictions++
	}
	n := t.newNode(vpn, frame)
	t.entries[vpn] = n
	t.pushFront(n)
}

// Invalidate drops the entry for vpn, reporting whether one was resident
// (the model's invlpg).
func (t *TLB) Invalidate(vpn uint64) bool {
	n, ok := t.entries[vpn]
	if !ok {
		return false
	}
	t.stats.Invalidations++
	t.unlink(n)
	delete(t.entries, vpn)
	t.recycle(n)
	return true
}

// InvalidateRange drops the entries for every vpn in vpns, returning how
// many were resident.  It models the loop a ranged-shootdown IPI handler
// runs: one interrupt, many invlpg instructions.
func (t *TLB) InvalidateRange(vpns []uint64) int {
	n := 0
	for _, vpn := range vpns {
		if t.Invalidate(vpn) {
			n++
		}
	}
	return n
}

// FlushAll empties the TLB (the model's full flush, e.g. CR3 reload).
func (t *TLB) FlushAll() {
	t.stats.Flushes++
	for n := t.head.next; n != &t.tail; {
		next := n.next
		t.recycle(n)
		n = next
	}
	clear(t.entries)
	t.head.next = &t.tail
	t.tail.prev = &t.head
}

// Resident reports whether vpn is cached, without touching recency or
// statistics.  Test helper.
func (t *TLB) Resident(vpn uint64) bool {
	_, ok := t.entries[vpn]
	return ok
}

// FrameOf returns the cached frame for vpn without touching recency or
// statistics, for invariant checks.
func (t *TLB) FrameOf(vpn uint64) (uint64, bool) {
	n, ok := t.entries[vpn]
	if !ok {
		return 0, false
	}
	return n.frame, true
}

// Stats returns a copy of the event counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the event counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }
