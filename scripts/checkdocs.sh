#!/bin/sh
# Documentation gate (make docs / CI):
#   1. every Go package — the root sfbuf facade, every internal/
#      package, and every cmd/ and examples/ command — must carry a
#      godoc package comment in a non-test file: "// Package <name> ..."
#      for libraries, any doc comment directly above the package clause
#      ("// Command x ...", "// Quickstart ...") for package main;
#   2. every relative link in README.md and docs/*.md must resolve.
set -eu
cd "$(dirname "$0")/.."
fail=0

for dir in . internal/* cmd/* examples/*; do
	[ -d "$dir" ] || continue
	gofile=""
	for f in "$dir"/*.go; do
		[ -e "$f" ] || continue
		case "$f" in *_test.go) continue ;; esac
		gofile=$f
		break
	done
	[ -n "$gofile" ] || continue
	pkg=$(sed -n 's/^package \([a-zA-Z0-9_]*\).*/\1/p' "$gofile" | head -1)
	found=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		[ -e "$f" ] || continue
		if [ "$pkg" = "main" ]; then
			# A doc comment ends on the line directly above the package
			# clause.
			if grep -B1 "^package main" "$f" | head -1 | grep -q "^//"; then
				found=1
				break
			fi
		elif grep -q "^// Package $pkg " "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "missing package comment: $dir (package $pkg)"
		fail=1
	fi
done

for md in README.md docs/*.md; do
	[ -e "$md" ] || continue
	base=$(dirname "$md")
	for link in $(grep -o '](\([^)]*\))' "$md" | sed 's/^](\(.*\))$/\1/'); do
		case "$link" in
		http://* | https://* | \#*) continue ;;
		esac
		target=${link%%#*}
		[ -n "$target" ] || continue
		if [ ! -e "$base/$target" ] && [ ! -e "$target" ]; then
			echo "broken link in $md: $link"
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "docs check FAILED"
	exit 1
fi
echo "docs check OK: package comments present, links resolve"
