package sfbuf

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sfbuf/internal/fs"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/netstack"
	"sfbuf/internal/pipe"
	"sfbuf/internal/proc"
	"sfbuf/internal/sendfile"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/vm"
)

// TestKernelWideIntegration boots one kernel and runs every converted
// subsystem concurrently against the SAME mapping cache — the situation
// the sf_buf interface was designed for (Section 5: one shared cache
// instead of per-subsystem virtual-address management).  Each worker
// verifies its own data integrity; the test then checks that the mapping
// cache drained cleanly and nothing leaked a page wire.
func TestKernelWideIntegration(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		for _, plat := range []Platform{XeonMPHTT(), OpteronMP(), Sparc64MP()} {
			t.Run(fmt.Sprintf("%s/%v", plat.Name, mk), func(t *testing.T) {
				runIntegration(t, plat, mk)
			})
		}
	}
}

func runIntegration(t *testing.T, plat Platform, mk kernel.MapperKind) {
	k := MustBoot(Config{
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    4096,
		Backed:       true,
		CacheEntries: 96,
	})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Worker 1: pipe writer/reader pair moving patterned data.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := pipe.New(k)
		defer p.Close()
		wctx := k.Ctx(0)
		rctx := k.Ctx(k.M.NumCPUs() - 1)
		um, err := vm.AllocUserMem(k.M.Phys, 64*1024)
		if err != nil {
			fail("pipe: %v", err)
			return
		}
		defer um.Release()
		want := make([]byte, 64*1024)
		rand.New(rand.NewSource(1)).Read(want)
		um.WriteAt(0, want)

		inner := make(chan error, 1)
		go func() {
			buf := make([]byte, 16*1024)
			for round := 0; round < 5; round++ {
				got := make([]byte, 0, len(want))
				for len(got) < len(want) {
					n, err := p.Read(rctx, buf)
					if err != nil {
						inner <- err
						return
					}
					got = append(got, buf[:n]...)
				}
				if !bytes.Equal(got, want) {
					inner <- fmt.Errorf("pipe round %d corrupted", round)
					return
				}
			}
			inner <- nil
		}()
		for round := 0; round < 5; round++ {
			if err := p.Write(wctx, um, 0, len(want)); err != nil {
				fail("pipe write: %v", err)
				return
			}
		}
		if err := <-inner; err != nil {
			fail("pipe read: %v", err)
		}
	}()

	// Worker 2: filesystem churn + sendfile over a sink connection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := k.Ctx(1 % k.M.NumCPUs())
		d, err := memdisk.New(k, 4<<20)
		if err != nil {
			fail("memdisk: %v", err)
			return
		}
		fsys, err := fs.Mkfs(ctx, k, d, 64)
		if err != nil {
			fail("mkfs: %v", err)
			return
		}
		st := netstack.NewStack(k, netstack.MTUSmall)
		conn := st.NewSinkConn()
		defer conn.Close(ctx)
		data := make([]byte, 3*fs.BlockSize+77)
		rand.New(rand.NewSource(2)).Read(data)
		for round := 0; round < 10; round++ {
			name := fmt.Sprintf("doc%d.html", round%3)
			if err := fsys.WriteFile(ctx, name, data); err != nil {
				fail("writefile: %v", err)
				return
			}
			n, err := sendfile.SendFile(ctx, k, fsys, conn, name)
			if err != nil {
				fail("sendfile: %v", err)
				return
			}
			if n != int64(len(data)) {
				fail("sendfile sent %d of %d", n, len(data))
				return
			}
		}
		if err := fsys.Fsck(ctx); err != nil {
			fail("fsck: %v", err)
		}
	}()

	// Worker 3: a debugger ptracing a process.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := k.Ctx(2 % k.M.NumCPUs())
		tracee, err := proc.NewProcess(k, 7, 8)
		if err != nil {
			fail("process: %v", err)
			return
		}
		defer tracee.Release()
		want := make([]byte, 3*4096)
		rand.New(rand.NewSource(3)).Read(want)
		for round := 0; round < 10; round++ {
			if err := tracee.PtracePoke(ctx, 999, want); err != nil {
				fail("poke: %v", err)
				return
			}
			got := make([]byte, len(want))
			if err := tracee.PtracePeek(ctx, 999, got); err != nil {
				fail("peek: %v", err)
				return
			}
			if !bytes.Equal(got, want) {
				fail("ptrace corrupted round %d", round)
				return
			}
		}
	}()

	// Worker 4: loopback zero-copy socket traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		st := netstack.NewStack(k, netstack.MTUSmall)
		conn := st.NewConn()
		sctx := k.Ctx(0)
		rctx := k.Ctx(3 % k.M.NumCPUs())
		um, err := vm.AllocUserMem(k.M.Phys, 32*1024)
		if err != nil {
			fail("net usermem: %v", err)
			return
		}
		defer um.Release()
		want := make([]byte, 32*1024)
		rand.New(rand.NewSource(4)).Read(want)
		um.WriteAt(0, want)

		inner := make(chan error, 1)
		go func() {
			got := make([]byte, 0, 3*len(want))
			buf := make([]byte, 8192)
			for len(got) < 3*len(want) {
				n, err := conn.Recv(rctx, buf)
				if err != nil {
					inner <- err
					return
				}
				got = append(got, buf[:n]...)
			}
			for i := 0; i < 3; i++ {
				if !bytes.Equal(got[i*len(want):(i+1)*len(want)], want) {
					inner <- fmt.Errorf("net chunk %d corrupted", i)
					return
				}
			}
			inner <- nil
		}()
		for i := 0; i < 3; i++ {
			if err := conn.SendZeroCopy(sctx, um, 0, len(want)); err != nil {
				fail("send: %v", err)
				return
			}
		}
		if err := <-inner; err != nil {
			fail("recv: %v", err)
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Nothing may remain referenced: the i386 cache's inactive list must
	// be whole again.
	if i386, ok := k.Map.(*sfbuf.I386); ok {
		if got := i386.InactiveLen(); got != 96 {
			t.Errorf("inactive list = %d entries, want 96: leaked references", got)
		}
	}
	s := k.Map.Stats()
	if s.Allocs != s.Frees {
		t.Errorf("mapper allocs %d != frees %d", s.Allocs, s.Frees)
	}
}
