# Targets mirror .github/workflows/ci.yml so local runs and CI stay in
# lockstep: `make ci` is exactly what the workflow runs.

GO ?= go

.PHONY: all build test race fuzz-smoke fuzz bench bench-contended bench-batch bench-run bench-adaptive bench-contig bench-serve bench-reclaim bench-numa bench-defrag bench-tier docs lint vet fmt ci clean

all: build test

build:
	$(GO) build ./...
	$(GO) build ./cmd/... ./examples/...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Run the checked-in fuzz seed corpus as unit tests (what CI smokes).
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/sfbuf

# Actually fuzz the vectored sharded engine for a minute.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzBatchOps -fuzztime 60s ./internal/sfbuf

# Short smoke run: every benchmark once, so they cannot bit-rot.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full-length contention benchmark (the sharded-vs-global comparison).
bench-contended:
	$(GO) test -run '^$$' -bench BenchmarkAllocContended -benchtime 500000x -benchmem .

# Vectored batch economy: locks/page and shootdown rounds/page, batch=16
# against the single-page baseline.
bench-batch:
	$(GO) test -run '^$$' -bench BenchmarkAllocBatch -benchtime 200000x .

# Contiguous-run economy: walks/page and shootdown rounds/page, run=16
# against the scattered batch + per-page translation baseline.
bench-run:
	$(GO) test -run '^$$' -bench BenchmarkAllocRun -benchtime 200000x .

# Adaptive-contiguity economy: the per-consumer policy vs the static
# run/batch pins on the streaming and reuse-churn workloads.
bench-adaptive:
	$(GO) test -run '^$$' -bench BenchmarkAllocAdaptive -benchtime 100000x .

# Buddy-allocator promotion recovery: contiguous extents and superpage
# promotions after a fragmentation-churn warmup, vs the LIFO pool.
bench-contig:
	$(GO) test -run '^$$' -bench BenchmarkAllocContig -benchtime 100000x .

# Virtual-internet serving macro-benchmark: the five-way send-window
# sweep (adaptive vs fixed pins vs the global-lock cache), then the
# serve economy acceptance criterion at the canonical thousand-
# connection scale.  docs/SERVING.md documents the workload and metrics.
bench-serve:
	$(GO) test -run '^$$' -bench BenchmarkServe -benchtime 1x .
	$(GO) test -run TestServeEconomy -v -timeout 600s ./internal/experiments

# Background-reclaim economy: first-alloc-after-idle tail latency (p99 and
# p999), daemon vs on-demand reclaim, plus the steady-state no-cost check.
bench-reclaim:
	$(GO) test -run '^$$' -bench BenchmarkReclaim -benchtime 1x .
	$(GO) test -run TestReclaimEconomy -v -timeout 300s ./internal/experiments

# NUMA economy: socket-homed vs hash-striped mapping state on the
# modeled two- and four-package machines — cross-package lock
# acquisitions and teardown IPIs per op, at no cycle regression.
bench-numa:
	$(GO) test -run '^$$' -bench BenchmarkAllocNUMA -benchtime 1x .
	$(GO) test -run TestNUMAEconomy -v -timeout 300s ./internal/experiments

# Defragmentation-by-migration economy: contiguous extents and superpage
# promotions on the shaped ~70%-occupancy pool that defeats plain buddy
# coalescing, migration on vs. off, plus the steady-state acceptance
# criterion (>= 50% contiguous service at <= 10% cycle overhead).
bench-defrag:
	$(GO) test -run '^$$' -bench BenchmarkAllocDefrag -benchtime 32x .
	$(GO) test -run TestDefragEconomy -v -timeout 300s ./internal/experiments

# Tiered-placement economy: zipfian serving with consumer-hinted
# promotion vs the tier-oblivious baseline on the same fast/slow split
# (criterion: hinted <= 2/3 of oblivious cyc/page on zipf, within 10%
# on the uniform adversarial control).
bench-tier:
	$(GO) test -run '^$$' -bench BenchmarkAllocTier -benchtime 32x .
	$(GO) test -run TestTierEconomy -v -timeout 300s ./internal/experiments

# Documentation gate: package comments on every package, docs links
# resolve.  Mirrors the CI docs step.
docs:
	sh ./scripts/checkdocs.sh

lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: build lint docs test race fuzz-smoke bench

clean:
	$(GO) clean ./...
