# Targets mirror .github/workflows/ci.yml so local runs and CI stay in
# lockstep: `make ci` is exactly what the workflow runs.

GO ?= go

.PHONY: all build test race bench lint vet fmt ci clean

all: build test

build:
	$(GO) build ./...
	$(GO) build ./cmd/... ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke run: every benchmark once, so they cannot bit-rot.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full-length contention benchmark (the sharded-vs-global comparison).
bench-contended:
	$(GO) test -run '^$$' -bench BenchmarkAllocContended -benchtime 500000x -benchmem .

lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: build lint test race bench

clean:
	$(GO) clean ./...
