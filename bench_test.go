// Benchmarks regenerating every table and figure of the paper's
// evaluation.  Each benchmark runs the corresponding experiment at a
// reduced scale (the workload-to-cache ratios are preserved; see
// internal/experiments) and reports the figure's headline numbers as
// custom metrics.  cmd/sfbench runs the same experiments at full paper
// scale.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig2 -benchscale=1.0   # paper scale
package sfbuf

import (
	"flag"
	"strings"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/experiments"
	"sfbuf/internal/kernel"
	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

var benchScale = flag.Float64("benchscale", 0.02, "experiment scale for benchmarks (1.0 = paper scale)")

// runExperiment executes the registered experiment once per benchmark
// iteration and reports its improvement metrics.
func runExperiment(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	runner, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	opts := experiments.Options{Scale: *benchScale}
	var last *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	for _, key := range metricKeys {
		if v, ok := last.Metrics[key]; ok {
			// testing.B rejects units with whitespace; compact the
			// experiment's human-readable labels.
			b.ReportMetric(v, strings.ReplaceAll(key, " ", "_"))
		}
	}
}

// --- Section 3: microbenchmark table ---

func BenchmarkSec3TLBCosts(b *testing.B) {
	runExperiment(b, "sec3",
		"local_cached/Xeon-HTT", "remote/Xeon-MP-HTT", "remote/Opteron-MP")
}

// --- Figures 2-3: pipes ---

func BenchmarkFig2PipeBandwidth(b *testing.B) {
	runExperiment(b, "fig2",
		"improvement_pct/Xeon-UP", "improvement_pct/Xeon-MP", "improvement_pct/Opteron-MP")
}

func BenchmarkFig3PipeInvalidations(b *testing.B) {
	runExperiment(b, "fig3",
		"local/Xeon-MP/sf_buf", "local/Xeon-MP/original", "remote/Xeon-MP/original")
}

// --- Figures 4-7: memory disks ---

func BenchmarkFig4DD128(b *testing.B) {
	runExperiment(b, "fig4", "improvement_pct/Xeon-UP", "improvement_pct/Opteron-MP")
}

func BenchmarkFig5DD128Invalidations(b *testing.B) {
	runExperiment(b, "fig5",
		"remote/Xeon-MP/sf_buf: shared", "remote/Xeon-MP/original")
}

func BenchmarkFig6DD512(b *testing.B) {
	runExperiment(b, "fig6", "improvement_pct/Xeon-MP", "improvement_pct/Opteron-MP")
}

func BenchmarkFig7DD512Invalidations(b *testing.B) {
	runExperiment(b, "fig7",
		"remote/Xeon-MP/sf_buf: private", "remote/Xeon-MP/sf_buf: shared")
}

// --- Figures 8-10: PostMark ---

func BenchmarkFig8PostMark(b *testing.B) {
	runExperiment(b, "fig8", "improvement_pct/Xeon-UP", "improvement_pct/Opteron-MP")
}

func BenchmarkFig9PostMarkBandwidth(b *testing.B) {
	runExperiment(b, "fig9", "read_mbps/Xeon-MP/sf_buf", "write_mbps/Xeon-MP/sf_buf")
}

func BenchmarkFig10PostMarkInvalidations(b *testing.B) {
	runExperiment(b, "fig10", "local/Xeon-MP/sf_buf", "local/Xeon-MP/original")
}

// --- Figures 11-14: netperf ---

func BenchmarkFig11NetperfLargeMTU(b *testing.B) {
	runExperiment(b, "fig11", "improvement_pct/Xeon-UP", "improvement_pct/Opteron-MP")
}

func BenchmarkFig12NetperfSmallMTU(b *testing.B) {
	runExperiment(b, "fig12", "improvement_pct/Xeon-UP", "improvement_pct/Opteron-MP")
}

func BenchmarkFig13NetperfLargeMTUInvalidations(b *testing.B) {
	runExperiment(b, "fig13", "remote/Xeon-MP/sf_buf", "remote/Xeon-MP/original")
}

func BenchmarkFig14NetperfSmallMTUInvalidations(b *testing.B) {
	runExperiment(b, "fig14", "remote/Xeon-MP/sf_buf", "remote/Xeon-MP/original")
}

// --- Figures 15-20: web server ---

func BenchmarkFig15WebNASA(b *testing.B) {
	runExperiment(b, "fig15", "improvement_pct/Xeon-MP", "improvement_pct/Opteron-MP")
}

func BenchmarkFig16WebRice(b *testing.B) {
	runExperiment(b, "fig16", "improvement_pct/Xeon-MP", "improvement_pct/Opteron-MP")
}

func BenchmarkFig17WebNASAInvalidations(b *testing.B) {
	runExperiment(b, "fig17", "local/Xeon-MP/sf_buf", "local/Xeon-MP/original")
}

func BenchmarkFig18WebRiceInvalidations(b *testing.B) {
	runExperiment(b, "fig18", "local/Xeon-MP/sf_buf", "local/Xeon-MP/original")
}

func BenchmarkFig19CacheSweep(b *testing.B) {
	runExperiment(b, "fig19",
		"hitrate_on/64K cache entries", "hitrate_on/6K cache entries")
}

func BenchmarkFig20CacheSweepInvalidations(b *testing.B) {
	runExperiment(b, "fig20",
		"local/6K cache entries/offload=on", "local/6K cache entries/offload=off")
}

// --- Ablations: the design choices of DESIGN.md section 5, measured on a
// reuse-heavy mapping workload ---

type ablationRig struct {
	k     *kernel.Kernel
	sf    *sfbuf.I386
	pages []*vm.Page
}

func newAblationRig(b *testing.B, mode sfbuf.Ablation, entries, npages int) *ablationRig {
	b.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform: arch.XeonMP(),
		Mapper:   kernel.SFBuf,
		// The ablation benchmarks mirror the ablation experiment, which
		// studies the paper's cache engine.
		Cache:        kernel.CacheGlobal,
		PhysPages:    npages + 64,
		CacheEntries: entries,
	})
	if err != nil {
		b.Fatal(err)
	}
	i386 := k.Map.(*sfbuf.I386)
	i386.Ablate(mode)
	pages, err := k.M.Phys.AllocN(npages)
	if err != nil {
		b.Fatal(err)
	}
	return &ablationRig{k: k, sf: i386, pages: pages}
}

// ablationWorkload maps, touches and frees pages in rotation — the pipe
// reuse pattern — and reports simulated cycles per operation plus the
// invalidation counts.
func ablationWorkload(b *testing.B, mode sfbuf.Ablation) {
	r := newAblationRig(b, mode, 64, 32)
	ctx := r.k.Ctx(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := r.pages[i%len(r.pages)]
		buf, err := r.sf.Alloc(ctx, pg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.k.Pmap.Translate(ctx, buf.KVA(), true); err != nil {
			b.Fatal(err)
		}
		r.sf.Free(ctx, buf)
	}
	b.StopTimer()
	b.ReportMetric(float64(r.k.M.TotalCycles())/float64(b.N), "simcycles/op")
	b.ReportMetric(float64(r.k.M.Counters().LocalInv.Load())/float64(b.N), "localinv/op")
	b.ReportMetric(float64(r.k.M.Counters().RemoteInvIssued.Load())/float64(b.N), "remoteinv/op")
}

func BenchmarkAblationFullDesign(b *testing.B)  { ablationWorkload(b, 0) }
func BenchmarkAblationAccessedBit(b *testing.B) { ablationWorkload(b, sfbuf.AblateAccessedBit) }
func BenchmarkAblationNoSharing(b *testing.B)   { ablationWorkload(b, sfbuf.AblateSharing) }
func BenchmarkAblationNoLazyReuse(b *testing.B) { ablationWorkload(b, sfbuf.AblateLazyTeardown) }

// BenchmarkScaleExperiment regenerates the sharded-vs-global-vs-original
// contention table (experiment "scale").
func BenchmarkScaleExperiment(b *testing.B) {
	runExperiment(b, "scale",
		"remote_per_kop/sf_buf sharded", "remote_per_kop/sf_buf global-lock",
		"ipis_per_kop/sf_buf sharded", "ipis_per_kop/sf_buf global-lock")
}

// BenchmarkServe regenerates the virtual-internet serving macro-
// benchmark (experiment "serve"): the five-way send-window sweep over
// the canonical lossy workload, reporting each arm's p99 mapping
// latency and the engines' per-megabyte walk and shootdown economy.
// docs/SERVING.md documents the topology and the metrics.
func BenchmarkServe(b *testing.B) {
	runExperiment(b, "serve",
		"p99_adaptive", "p99_fixed-2", "p99_fixed-16", "p99_fixed-64", "p99_global",
		"walks_per_mb_adaptive", "walks_per_mb_global",
		"rounds_per_mb_adaptive", "rounds_per_mb_global")
}

// BenchmarkReclaim is make bench-reclaim's reporting benchmark
// (experiment "reclaim"): tail latency of the first allocation after an
// idle gap, with the background reclaim daemon riding the idle ticks vs
// the paper's on-demand-only reclaim, plus the steady-state churn cost of
// both arms (which must not differ — the daemon runs only against idle
// time).
func BenchmarkReclaim(b *testing.B) {
	runExperiment(b, "reclaim",
		"p99/daemon/16", "p999/daemon/16",
		"p99/on-demand/16", "p999/on-demand/16",
		"p99/daemon/1", "p99/on-demand/1",
		"steady_cyc_op/daemon", "steady_cyc_op/on-demand")
}

// BenchmarkAllocNUMA is make bench-numa's driving benchmark: the numa
// experiment's two-phase churn (hit-dominated hot set, then a cold sweep
// that forces reclaim) on a two-package Xeon, once with socket-homed
// mapping state and once with the flat hash-striped layout.  Wall-clock
// ns/op is the simulator's own cost; the metrics that matter are the
// cross-package lock acquisitions and teardown IPIs per operation, which
// homing exists to eliminate.
func BenchmarkAllocNUMA(b *testing.B) {
	cases := []struct {
		name   string
		homing kernel.HomingPolicy
	}{
		{"homed", kernel.HomingAuto},
		{"striped", kernel.HomingOff},
	}
	const (
		sockets = 2
		entries = 256
	)
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			k := kernel.MustBoot(kernel.Config{
				Platform:     arch.XeonNUMA(sockets, 2),
				Mapper:       kernel.SFBuf,
				Cache:        kernel.CacheSharded,
				PhysPages:    8*entries + 128,
				CacheEntries: entries,
				Sockets:      sockets,
				Homing:       c.homing,
			})
			b.ResetTimer()
			done, err := experiments.ChurnNUMA(k, entries, b.N)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			ops := float64(done)
			if ops == 0 {
				return
			}
			cnt := k.M.SnapshotCounters()
			b.ReportMetric(float64(cnt.RemoteLockAcq)/ops, "rlocks/op")
			b.ReportMetric(float64(cnt.RemoteIPIs)/ops, "rIPIs/op")
			b.ReportMetric(float64(cnt.LockAcq)/ops, "locks/op")
			b.ReportMetric(float64(k.M.TotalCycles())/ops, "simcycles/op")
		})
	}
}

// BenchmarkAllocContended hammers Alloc/touch/Free from one goroutine per
// virtual CPU over a working set larger than the cache — the workload the
// sharded engine exists for.  Wall-clock ns/op measures real lock
// contention between the goroutines; the reported metrics expose the
// shootdown traffic the simulated machine observed.
func BenchmarkAllocContended(b *testing.B) {
	cases := []struct {
		name  string
		mk    kernel.MapperKind
		cache kernel.CachePolicy
	}{
		{"sharded", kernel.SFBuf, kernel.CacheSharded},
		{"global", kernel.SFBuf, kernel.CacheGlobal},
		{"original", kernel.OriginalKernel, kernel.CacheSharded},
	}
	const entries = 512
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			k := kernel.MustBoot(kernel.Config{
				Platform:     arch.XeonMPHTT(),
				Mapper:       c.mk,
				Cache:        c.cache,
				PhysPages:    8*entries + 128,
				CacheEntries: entries,
			})
			pages, err := k.M.Phys.AllocN(4 * entries)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			done, err := experiments.Churn(k, pages, b.N)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			ops := float64(done)
			if ops == 0 {
				return
			}
			cnt := k.M.SnapshotCounters()
			b.ReportMetric(float64(cnt.RemoteInvIssued)/ops, "remoteinv/op")
			b.ReportMetric(float64(cnt.IPIsDelivered)/ops, "ipis/op")
			b.ReportMetric(float64(cnt.LocalInv)/ops, "localinv/op")
			// The machine's modeled time: this is where the shootdown
			// waits the batching avoids actually live (wall-clock ns/op
			// only shows scheduler/lock behavior of the simulator).
			b.ReportMetric(float64(k.M.TotalCycles())/ops, "simcycles/op")
		})
	}
}

// BenchmarkAllocBatch is the vectored path's acceptance benchmark:
// contended churn in runs of 16 pages, comparing the sharded engine's
// native AllocBatch/FreeBatch against the same pages churned one at a
// time, against the global-lock cache's loop fallback, and against the
// original kernel's pmap_qenter path.  Reported per page moved: lock
// round trips, shootdown rounds (single-page IPI rounds plus batched
// flush rounds), and simulated cycles — the per-engine batch stats the
// bench smoke records.  The sharded vectored row must show >= 2x fewer
// locks/page than sharded single-page at equal shootdown rounds/page
// (enforced by TestVectoredLockAndShootdownEconomy and the scale
// experiment's batch rows; this benchmark is where the numbers surface).
func BenchmarkAllocBatch(b *testing.B) {
	const batch = 16 // == experiments.ScaleBatch
	cases := []struct {
		name    string
		mk      kernel.MapperKind
		cache   kernel.CachePolicy
		batched bool
	}{
		{"sharded-batch16", kernel.SFBuf, kernel.CacheSharded, true},
		{"sharded-single", kernel.SFBuf, kernel.CacheSharded, false},
		{"global-batch16", kernel.SFBuf, kernel.CacheGlobal, true},
		{"original-batch16", kernel.OriginalKernel, kernel.CacheSharded, true},
	}
	const entries = 512
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			k := kernel.MustBoot(kernel.Config{
				Platform:     arch.XeonMPHTT(),
				Mapper:       c.mk,
				Cache:        c.cache,
				PhysPages:    8*entries + 128,
				CacheEntries: entries,
			})
			pages, err := k.M.Phys.AllocN(4 * entries)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var done int
			if c.batched {
				done, err = experiments.ChurnBatch(k, pages, b.N, batch)
			} else {
				done, err = experiments.Churn(k, pages, b.N)
			}
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if done == 0 {
				return
			}
			perPage := float64(done)
			cnt := k.M.SnapshotCounters()
			st := k.Map.Stats()
			b.ReportMetric(float64(cnt.LockAcq)/perPage, "locks/page")
			b.ReportMetric(float64(cnt.RemoteInvIssued)/perPage, "sdrounds/page")
			b.ReportMetric(float64(cnt.IPIsDelivered)/perPage, "ipis/page")
			b.ReportMetric(float64(k.M.TotalCycles())/perPage, "simcycles/page")
			if st.BatchAllocs > 0 {
				b.ReportMetric(float64(st.BatchPages)/float64(st.BatchAllocs), "pages/batch")
			}
		})
	}
}

// BenchmarkAllocRun is the contiguous-run acceptance benchmark: contended
// churn in windows of 16 pages, comparing the sharded engine's native
// AllocRun + ranged translation against the scattered AllocBatch +
// per-page translation path (the CopyOutVec cost shape), the global-lock
// cache's loop-identical run fallback, and the original kernel.
// Reported per page moved: page-table walks (the ranged-translate
// economy — the run row must show >= 4x fewer than the batch row, pinned
// by TestRunTranslateEconomy), TLB entries filled, shootdown rounds
// (which must stay equal or better: window teardown debt launders in
// batches), and simulated cycles.
func BenchmarkAllocRun(b *testing.B) {
	const run = 16 // == experiments.ScaleBatch
	cases := []struct {
		name  string
		mk    kernel.MapperKind
		cache kernel.CachePolicy
		mode  string
	}{
		{"sharded-run16", kernel.SFBuf, kernel.CacheSharded, "run"},
		{"sharded-batch16", kernel.SFBuf, kernel.CacheSharded, "batch"},
		{"global-run16", kernel.SFBuf, kernel.CacheGlobal, "run"},
		{"original-run16", kernel.OriginalKernel, kernel.CacheSharded, "run"},
	}
	const entries = 512
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			k := kernel.MustBoot(kernel.Config{
				Platform:     arch.XeonMPHTT(),
				Mapper:       c.mk,
				Cache:        c.cache,
				PhysPages:    8*entries + 128,
				CacheEntries: entries,
			})
			pages, err := k.M.Phys.AllocN(4 * entries)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var done int
			if c.mode == "run" {
				done, err = experiments.ChurnRun(k, pages, b.N, run)
			} else {
				done, err = experiments.ChurnBatch(k, pages, b.N, run)
			}
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if done == 0 {
				return
			}
			perPage := float64(done)
			cnt := k.M.SnapshotCounters()
			st := k.Map.Stats()
			var tlbTouched uint64
			for cpu := 0; cpu < k.M.NumCPUs(); cpu++ {
				ts := k.M.CPU(cpu).TLBStats()
				tlbTouched += ts.Inserts + ts.LargeInserts
			}
			b.ReportMetric(float64(cnt.PTWalks)/perPage, "walks/page")
			b.ReportMetric(float64(tlbTouched)/perPage, "tlb/page")
			b.ReportMetric(float64(cnt.LockAcq)/perPage, "locks/page")
			b.ReportMetric(float64(cnt.RemoteInvIssued)/perPage, "sdrounds/page")
			b.ReportMetric(float64(k.M.TotalCycles())/perPage, "simcycles/page")
			if st.RunAllocs > 0 {
				b.ReportMetric(float64(st.RunPages)/float64(st.RunAllocs), "pages/run")
			}
		})
	}
}

// BenchmarkAllocContig is the buddy frame allocator's acceptance
// benchmark: after a fragmentation-churn warmup, every round allocates a
// FRESH superpage-spanning physical extent, maps it as an aligned run,
// sweeps it, and releases everything.  On the buddy allocator the freed
// frames coalesce, so AllocContig keeps serving aligned contiguous
// extents (contig% ~1.0) and the run windows promote — after the first
// cold install the page-set cache revives the promoted window round
// after round.  On the seed's LIFO stack (the -lifo rows) contiguity
// never comes back: runs install scattered frames (no promotion), and
// the scattered-batch row pays the full per-page translation bill.  The
// promotion-recovery criterion (Promotions > 0, walks/page <= 1/4 of
// the scattered path) is enforced by TestContigPromotionRecovery; this
// benchmark is where the numbers surface.
func BenchmarkAllocContig(b *testing.B) {
	cases := []struct {
		name    string
		phys    kernel.PhysPolicy
		useRuns bool
	}{
		{"buddy-contig", kernel.PhysBuddyAuto, true},
		{"lifo-run", kernel.PhysBuddyOff, true},
		{"lifo-scattered-batch", kernel.PhysBuddyOff, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			k, err := experiments.BootContigRecovery(c.phys)
			if err != nil {
				b.Fatal(err)
			}
			if err := experiments.FragmentPhys(k); err != nil {
				b.Fatal(err)
			}
			k.Reset()
			superBefore := k.Pmap.SuperStats()
			b.ResetTimer()
			done, frac, err := experiments.ChurnFrag(k, b.N, experiments.ContigRecoveryPages, c.useRuns)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			perPage := float64(done)
			cnt := k.M.SnapshotCounters()
			st := k.Map.Stats()
			super := k.Pmap.SuperStats()
			phys := k.PhysStats()
			b.ReportMetric(float64(cnt.PTWalks)/perPage, "walks/page")
			b.ReportMetric(float64(cnt.RemoteInvIssued)/perPage, "sdrounds/page")
			b.ReportMetric(float64(k.M.TotalCycles())/perPage, "simcycles/page")
			b.ReportMetric(frac, "contig/extent")
			b.ReportMetric(float64(super.Promotions-superBefore.Promotions), "promotions")
			b.ReportMetric(float64(phys.LargestFreeExtent), "largestfree_pages")
			if st.RunAllocs > 0 {
				b.ReportMetric(float64(st.RunRevives)/float64(st.RunAllocs), "revives/run")
			}
		})
	}
}

// BenchmarkAllocDefrag is make bench-defrag's reporting benchmark: the
// defrag experiment's steady-churn driver on the shaped ~70%-occupancy
// pool, where scattered residents in every superpage span defeat the
// buddy allocator's eager coalescing for good.  Each iteration is one
// serving round — 512 single-page churn ops plus one superpage extent
// mapped as an aligned run.  On the migrate row the Migrator evacuates
// the nearly-free spans (on demand from AllocPhysContig and ahead of
// demand on daemon idle ticks), so contig/extent returns to ~1.0 and the
// run windows promote; on the no-migrate row both stay 0 forever.  The
// acceptance criterion (>= 50% contiguous service, non-zero promotions,
// steady-state simcycles/op within 10% of the baseline, byte-oracle
// clean) is enforced by TestDefragEconomy; this benchmark is where the
// numbers surface.
func BenchmarkAllocDefrag(b *testing.B) {
	cases := []struct {
		name string
		pol  kernel.MigratePolicy
	}{
		{"migrate", kernel.MigrateOn},
		{"no-migrate", kernel.MigrateOff},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			k, err := experiments.BootDefrag(c.pol)
			if err != nil {
				b.Fatal(err)
			}
			shape, err := experiments.ShapeOccupancy(k)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := experiments.ChurnDefrag(k, shape, 2); err != nil {
				b.Fatal(err)
			}
			k.Reset()
			superBefore := k.Pmap.SuperStats()
			b.ResetTimer()
			done, contig, err := experiments.ChurnDefrag(k, shape, b.N)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			super := k.Pmap.SuperStats()
			mig := k.MigrationStats()
			b.ReportMetric(float64(contig)/float64(b.N), "contig/extent")
			b.ReportMetric(float64(super.Promotions-superBefore.Promotions)/float64(b.N), "promotions/round")
			b.ReportMetric(float64(k.M.TotalCycles())/float64(done), "simcycles/op")
			b.ReportMetric(float64(mig.PagesMoved), "pagesmoved")
			b.ReportMetric(float64(mig.BlocksFreed), "blocksfreed")
		})
	}
}

// BenchmarkAllocTier is make bench-tier's reporting benchmark: the tier
// experiment's zipfian serving loop on the two-tier pool whose fast tier
// holds a quarter of the working set, each iteration one extent served
// (mapped, copied, checksummed, unmapped — slow frames paying the
// platform's per-byte surcharge).  On the hinted rows the consumer's
// reuse EWMAs nominate hot extents and the tier keeper migrates them
// fast; on the oblivious rows frames stay where allocation order put
// them.  The acceptance criterion (hinted <= 2/3 of oblivious
// simcycles/page on the zipfian workload, within 10% on the uniform
// adversarial one) is enforced by TestTierEconomy; this benchmark is
// where the numbers surface.
func BenchmarkAllocTier(b *testing.B) {
	for _, c := range []struct {
		name  string
		hints kernel.TierHintPolicy
	}{
		{"hinted", kernel.TierHintOn},
		{"oblivious", kernel.TierHintOff},
	} {
		for _, workload := range []string{"zipf", "uniform"} {
			b.Run(c.name+"-"+workload, func(b *testing.B) {
				k, err := experiments.BootTier(c.hints)
				if err != nil {
					b.Fatal(err)
				}
				extents, _, err := experiments.AllocTierExtents(k)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := experiments.ChurnTier(k, workload, extents, 600); err != nil {
					b.Fatal(err)
				}
				k.Reset()
				b.ResetTimer()
				pages, err := experiments.ChurnTier(k, workload, extents, b.N)
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				st := k.TierStats()
				b.ReportMetric(float64(k.M.TotalCycles())/float64(pages), "simcycles/page")
				for _, cs := range st.Consumers {
					if cs.Name == "tier" {
						b.ReportMetric(cs.FastFrac(), "fastfrac")
					}
				}
				b.ReportMetric(float64(st.PromotedPages), "promoted")
				b.ReportMetric(float64(st.DemotedPages), "demoted")
			})
		}
	}
}

// BenchmarkAllocAdaptive is the adaptive-contiguity acceptance
// benchmark: the two canonical workloads (cyclic re-streaming of large
// extents wider than the cache, and reuse-heavy churn over a
// hash-resident page set with sliding extent boundaries), each driven
// under the adaptive per-consumer policy and under both static pins.
// The criterion — adaptive within 10% of the best static choice on both
// workloads and >= 2x better than the worst on each, in simulated
// cycles per page — is enforced by TestAdaptivePolicyEconomy; this
// benchmark is where the numbers surface.  On the streaming rows the
// revives/run metric shows the page-set window cache doing the work.
func BenchmarkAllocAdaptive(b *testing.B) {
	for _, workload := range []string{"stream", "churn"} {
		for _, policy := range []string{"adaptive", "run", "batch"} {
			b.Run(workload+"-"+policy, func(b *testing.B) {
				k, err := experiments.BootAdaptive()
				if err != nil {
					b.Fatal(err)
				}
				runLen := experiments.AdaptiveStreamLen
				if workload == "churn" {
					runLen = experiments.AdaptiveChurnLen
				}
				rounds := b.N / (k.M.NumCPUs() * runLen)
				if rounds < 1 {
					rounds = 1
				}
				b.ResetTimer()
				done, err := experiments.ChurnAdaptiveWorkload(k, workload, policy, rounds)
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				perPage := float64(done)
				cnt := k.M.SnapshotCounters()
				st := k.Map.Stats()
				b.ReportMetric(float64(k.M.TotalCycles())/perPage, "simcycles/page")
				b.ReportMetric(float64(cnt.PTWalks)/perPage, "walks/page")
				b.ReportMetric(float64(cnt.RemoteInvIssued)/perPage, "sdrounds/page")
				if st.RunAllocs > 0 {
					b.ReportMetric(float64(st.RunRevives)/float64(st.RunAllocs), "revives/run")
				}
			})
		}
	}
}

// BenchmarkMapperMicro compares the four mapper implementations on the
// same single-page map/touch/unmap loop (Go-time measured; simulated
// cycles reported as a metric).
func BenchmarkMapperMicro(b *testing.B) {
	cases := []struct {
		name string
		plat arch.Platform
		mk   kernel.MapperKind
	}{
		{"i386-sfbuf", arch.XeonMP(), kernel.SFBuf},
		{"amd64-sfbuf", arch.OpteronMP(), kernel.SFBuf},
		{"sparc64-sfbuf", arch.Sparc64MP(), kernel.SFBuf},
		{"i386-original", arch.XeonMP(), kernel.OriginalKernel},
		{"amd64-original", arch.OpteronMP(), kernel.OriginalKernel},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			k := kernel.MustBoot(kernel.Config{
				Platform:     c.plat,
				Mapper:       c.mk,
				PhysPages:    64,
				CacheEntries: 16,
			})
			ctx := k.Ctx(0)
			pg, err := k.M.Phys.Alloc()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err := k.Map.Alloc(ctx, pg, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := k.Pmap.Translate(ctx, buf.KVA(), false); err != nil {
					b.Fatal(err)
				}
				k.Map.Free(ctx, buf)
			}
			b.StopTimer()
			b.ReportMetric(float64(k.M.TotalCycles())/float64(b.N), "simcycles/op")
		})
	}
}

// BenchmarkTLBOps measures the raw software-TLB data structure.
func BenchmarkTLBOps(b *testing.B) {
	m := smp.NewMachine(arch.XeonMP(), 16, false)
	ctx := m.Ctx(0)
	b.Run("insert-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vpn := uint64(i % 128)
			ctx.TLBInsert(vpn, vpn+1)
			ctx.TLBLookup(vpn)
		}
	})
	b.Run("invalidate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vpn := uint64(i % 128)
			ctx.TLBInsert(vpn, vpn+1)
			ctx.InvalidateLocal(vpn)
		}
	})
}

// BenchmarkTranslate measures the MMU model's hot path.
func BenchmarkTranslate(b *testing.B) {
	m := smp.NewMachine(arch.XeonMP(), 64, false)
	pm := pmap.New(m)
	ctx := m.Ctx(0)
	pg, err := m.Phys.Alloc()
	if err != nil {
		b.Fatal(err)
	}
	va := uint64(pmap.KVABaseI386)
	pm.KEnter(ctx, va, pg)
	if _, err := pm.Translate(ctx, va, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pm.Translate(ctx, va, false); err != nil {
			b.Fatal(err)
		}
	}
}

// sanity check that every registered experiment has a benchmark above.
func TestEveryExperimentHasABenchmark(t *testing.T) {
	covered := map[string]bool{
		"sec3": true, "fig2": true, "fig3": true, "fig4": true, "fig5": true,
		"fig6": true, "fig7": true, "fig8": true, "fig9": true, "fig10": true,
		"fig11": true, "fig12": true, "fig13": true, "fig14": true,
		"fig15": true, "fig16": true, "fig17": true, "fig18": true,
		"fig19": true, "fig20": true,
		"ablation": true, // covered by the BenchmarkAblation* family
		"scale":    true, // covered by BenchmarkScaleExperiment + BenchmarkAllocContended
		"serve":    true, // covered by BenchmarkServe
		"reclaim":  true, // covered by BenchmarkReclaim
		"numa":     true, // covered by BenchmarkAllocNUMA
		"defrag":   true, // covered by BenchmarkAllocDefrag
		"tier":     true, // covered by BenchmarkAllocTier
	}
	for _, id := range experiments.IDs() {
		if !covered[id] {
			t.Errorf("experiment %s has no benchmark", id)
		}
	}
	if len(experiments.IDs()) != len(covered) {
		t.Errorf("registered %d experiments, benchmarks cover %d",
			len(experiments.IDs()), len(covered))
	}
}
