package sfbuf

// Acceptance test for the buddy physical-frame allocator: after a
// fragmentation-churn warmup, aligned AllocRun windows over AllocContig
// extents on the buddy-backed sharded engine regain superpage promotion
// (Promotions > 0) at <= 1/4 the page-table walks per page of the
// scattered batch + per-page-translation path, while a LIFO-backed
// kernel never recovers contiguity at all.  BenchmarkAllocContig surfaces
// the same numbers; this test enforces them.

import (
	"errors"
	"testing"

	"sfbuf/internal/experiments"
	"sfbuf/internal/kernel"
	"sfbuf/internal/vm"
)

type contigRecoveryResult struct {
	promotions uint64
	walksPage  float64
	contigFrac float64
	largestExt int
}

func driveContigRecovery(t testing.TB, physBuddy kernel.PhysPolicy, useRuns bool, ops int) contigRecoveryResult {
	t.Helper()
	k, err := experiments.BootContigRecovery(physBuddy)
	if err != nil {
		t.Fatal(err)
	}
	if err := experiments.FragmentPhys(k); err != nil {
		t.Fatal(err)
	}
	k.Reset()
	superBefore := k.Pmap.SuperStats()
	done, frac, err := experiments.ChurnFrag(k, ops, experiments.ContigRecoveryPages, useRuns)
	if err != nil {
		t.Fatal(err)
	}
	snap := k.M.SnapshotCounters()
	return contigRecoveryResult{
		promotions: k.Pmap.SuperStats().Promotions - superBefore.Promotions,
		walksPage:  float64(snap.PTWalks) / float64(done),
		contigFrac: frac,
		largestExt: k.PhysStats().LargestFreeExtent,
	}
}

func TestContigPromotionRecovery(t *testing.T) {
	const ops = 64 * experiments.ContigRecoveryPages
	buddy := driveContigRecovery(t, kernel.PhysBuddyAuto, true, ops)
	lifoRun := driveContigRecovery(t, kernel.PhysBuddyOff, true, ops)
	scattered := driveContigRecovery(t, kernel.PhysBuddyOff, false, ops)
	t.Logf("buddy run: promotions=%d walks/page=%.4f contig=%.2f largest=%d",
		buddy.promotions, buddy.walksPage, buddy.contigFrac, buddy.largestExt)
	t.Logf("lifo run: promotions=%d walks/page=%.4f contig=%.2f largest=%d",
		lifoRun.promotions, lifoRun.walksPage, lifoRun.contigFrac, lifoRun.largestExt)
	t.Logf("lifo scattered batch: walks/page=%.4f", scattered.walksPage)

	// The recovery criterion: churned frames coalesced back into aligned
	// extents, and the aligned run windows over them promote again.
	if buddy.contigFrac < 0.9 {
		t.Errorf("buddy contig fraction = %.2f, want >= 0.9 after fragmentation churn", buddy.contigFrac)
	}
	if buddy.promotions == 0 {
		t.Error("buddy-backed runs earned no superpage promotions after churn")
	}
	if buddy.walksPage*4 > scattered.walksPage {
		t.Errorf("buddy run walks/page = %.4f, want <= 1/4 of scattered path %.4f",
			buddy.walksPage, scattered.walksPage)
	}
	// The LIFO pool demonstrates the disease: zero contiguity, zero
	// promotions, forever.
	if lifoRun.contigFrac != 0 {
		t.Errorf("LIFO contig fraction = %.2f, want 0", lifoRun.contigFrac)
	}
	if lifoRun.promotions != 0 {
		t.Errorf("LIFO runs promoted %d windows over scattered frames", lifoRun.promotions)
	}
}

// TestAllocContigFacade exercises the public knob end to end: PhysBuddy
// forced on boots the buddy allocator on any engine, AllocContig extents
// come back aligned, and PhysStats reports through the facade types.
func TestAllocContigFacade(t *testing.T) {
	k := MustBoot(Config{
		Platform:     XeonMP(),
		Mapper:       SFBufKernel,
		Cache:        CacheGlobal, // Auto would say LIFO here...
		PhysBuddy:    PhysBuddyOn, // ...but On overrides
		PhysPages:    2048,
		CacheEntries: 64,
	})
	pages, err := k.AllocPhysContig(128)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range pages {
		if pg.Frame() != pages[0].Frame()+uint64(i) {
			t.Fatalf("page %d breaks contiguity", i)
		}
	}
	var st PhysStats = k.PhysStats()
	if !st.Buddy || st.ContigAllocs != 1 {
		t.Fatalf("PhysStats = %+v", st)
	}
	for _, pg := range pages {
		k.M.Phys.Free(pg)
	}
	// And the default figure configuration still refuses: its LIFO pool
	// is the bit-exact seed allocator.
	g := MustBoot(Config{Platform: XeonMP(), Mapper: SFBufKernel, Cache: CacheGlobal,
		PhysPages: 256, CacheEntries: 64})
	if _, err := g.AllocPhysContig(8); !errors.Is(err, ErrNoContig) {
		t.Fatalf("LIFO AllocPhysContig = %v, want ErrNoContig", err)
	}
	if _, err := vm.NewPhysMem(8, false).AllocContig(2, 1); !errors.Is(err, vm.ErrNoContig) {
		t.Fatal("vm-level LIFO AllocContig must refuse")
	}
}
