// Zerocopyrx demonstrates zero-copy socket receive with page flipping
// (Section 2.3): the driver injects kernel pages with ephemeral mappings
// into the network stack; when the application's buffer is page-aligned
// and page-sized, the kernel page replaces the application's page and no
// copy ever happens — otherwise the mapping is used for a copy.
package main

import (
	"fmt"

	root "sfbuf"
	"sfbuf/internal/netstack"
	"sfbuf/internal/vm"
)

func main() {
	k := root.MustBoot(root.Config{
		Platform:     root.OpteronMP(),
		Mapper:       root.SFBufKernel,
		PhysPages:    512,
		Backed:       true,
		CacheEntries: 64,
	})
	// MSS of exactly one page so full frames are flippable.
	st := netstack.NewStack(k, vm.PageSize+netstack.HeaderSize)
	conn := st.NewZeroCopyRxConn()

	sender := k.Ctx(0)
	receiver := k.Ctx(1)

	// The sender transmits three full pages and one partial tail.
	src, err := root.AllocUserMem(k, 3*vm.PageSize+1000)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 4; i++ {
		line := fmt.Sprintf("page %d payload ", i)
		src.WriteAt(i*vm.PageSize, []byte(line))
	}
	if err := conn.SendZeroCopy(sender, src, 0, src.Len()); err != nil {
		panic(err)
	}

	// The receiver's buffer is page-aligned: full pages flip, the tail
	// copies.
	dst, err := root.AllocUserMem(k, 4*vm.PageSize)
	if err != nil {
		panic(err)
	}
	got := 0
	for got < src.Len() {
		n, err := conn.RecvZeroCopy(receiver, dst, got)
		if err != nil {
			panic(err)
		}
		line := make([]byte, 16)
		dst.ReadAt(got, line)
		fmt.Printf("received %4d bytes at offset %5d: %q\n", n, got, line)
		got += n
	}

	s := conn.Stats()
	fmt.Printf("\npage flips: %d, fallback copies: %d\n", s.PageFlips, s.RxCopies)
	fmt.Println("three aligned pages changed hands without a single copy;")
	fmt.Println("only the 1000-byte tail was copied through its ephemeral mapping.")
}
