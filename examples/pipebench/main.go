// Pipebench runs the paper's headline experiment — lmbench's bw_pipe —
// across all five evaluation platforms under both kernels, reproducing
// Figure 2's comparison (here at one tenth of the paper's transfer size;
// pass -full for the 50 MB configuration).
package main

import (
	"flag"
	"fmt"
	"os"

	root "sfbuf"
	"sfbuf/internal/cycles"
	"sfbuf/internal/workloads"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full 50 MB transfer")
	flag.Parse()

	total := int64(5 << 20)
	if *full {
		total = 50 << 20
	}
	fmt.Printf("bw_pipe: %d MB through a pipe in 64 KB chunks\n\n", total>>20)
	fmt.Printf("%-12s  %12s  %12s  %s\n", "Platform", "sf_buf MB/s", "orig MB/s", "improvement")

	for _, plat := range root.EvaluationPlatforms() {
		var mbps [2]float64
		for i, mk := range []root.MapperKind{root.SFBufKernel, root.OriginalKernel} {
			k, err := root.Boot(root.Config{
				Platform:  plat,
				Mapper:    mk,
				PhysPages: 512,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "boot:", err)
				os.Exit(1)
			}
			cfg := workloads.DefaultBWPipe(k)
			cfg.TotalBytes = total
			moved, err := workloads.BWPipe(k, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bw_pipe:", err)
				os.Exit(1)
			}
			mbps[i] = cycles.MBps(moved, k.M.TotalCycles(), plat.FreqGHz)
		}
		fmt.Printf("%-12s  %12.0f  %12.0f  %+.0f%%\n",
			plat.Name, mbps[0], mbps[1], (mbps[0]/mbps[1]-1)*100)
	}
	fmt.Println("\npaper (Figure 2): +67%, +129%, +168%, +113%, +22%")
}
