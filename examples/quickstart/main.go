// Quickstart: boot a simulated Xeon, map a physical page through the
// sf_buf interface, move data through the mapping, and watch what the
// mapping cache and the TLB-coherence counters do — first under the sf_buf
// kernel, then under the original kernel for contrast.
package main

import (
	"fmt"

	root "sfbuf"
	"sfbuf/internal/kcopy"
)

func run(mk root.MapperKind) {
	k := root.MustBoot(root.Config{
		Platform:     root.XeonMP(),
		Mapper:       mk,
		PhysPages:    256,
		Backed:       true,
		CacheEntries: 64,
	})
	fmt.Printf("== %s ==\n", k.Name())

	ctx := k.Ctx(0)
	page, err := k.M.Phys.Alloc()
	if err != nil {
		panic(err)
	}

	// Map the page, write through the mapping, read it back.
	for round := 1; round <= 3; round++ {
		b, err := k.Map.Alloc(ctx, page, 0)
		if err != nil {
			panic(err)
		}
		msg := fmt.Sprintf("hello from round %d", round)
		if err := kcopy.CopyIn(ctx, k.Pmap, b.KVA(), []byte(msg)); err != nil {
			panic(err)
		}
		got := make([]byte, len(msg))
		if err := kcopy.CopyOut(ctx, k.Pmap, got, b.KVA()); err != nil {
			panic(err)
		}
		fmt.Printf("round %d: kva=%#x read back %q\n", round, b.KVA(), got)
		k.Map.Free(ctx, b)
	}

	s := k.Map.Stats()
	c := k.M.SnapshotCounters()
	fmt.Printf("mapper: %d allocs, %d hits, %d misses (hit rate %.0f%%)\n",
		s.Allocs, s.Hits, s.Misses, s.HitRate()*100)
	fmt.Printf("TLB coherence: %d local invalidations, %d remote shootdowns issued\n\n",
		c.LocalInv, c.RemoteInvIssued)
}

func main() {
	// The sf_buf kernel reuses the same mapping every round: one miss,
	// then hits, and no TLB coherence traffic at all.
	run(root.SFBufKernel)
	// The original kernel allocates a fresh virtual address every round
	// and pays a global TLB invalidation for every free.
	run(root.OriginalKernel)
}
