// Ptracedemo shows the two process-facing users of ephemeral mappings
// (Sections 2.4 and 2.5): a debugger reading and patching a traced
// process's memory through CPU-private mappings, and execve validating an
// executable's image header.  Both run on the sf_buf kernel and report the
// coherence traffic they did NOT generate.
package main

import (
	"fmt"

	root "sfbuf"
	"sfbuf/internal/fs"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/proc"
)

func main() {
	k := root.MustBoot(root.Config{
		Platform:     root.XeonMPHTT(),
		Mapper:       root.SFBufKernel,
		PhysPages:    1024,
		Backed:       true,
		CacheEntries: 128,
	})
	ctx := k.Ctx(0)

	// --- ptrace: peek and poke a traced process ---
	traced, err := proc.NewProcess(k, 42, 8)
	if err != nil {
		panic(err)
	}
	defer traced.Release()

	// The traced process has a secret at 0x1234 (written via ptrace too,
	// playing its own loader).
	secret := []byte("correct horse battery staple")
	if err := traced.PtracePoke(ctx, 0x1234, secret); err != nil {
		panic(err)
	}

	got := make([]byte, len(secret))
	if err := traced.PtracePeek(ctx, 0x1234, got); err != nil {
		panic(err)
	}
	fmt.Printf("ptrace peek @0x1234: %q\n", got)

	// Patch one word, debugger-style.
	if err := traced.PtracePoke(ctx, 0x1234+8, []byte("BATTERY")); err != nil {
		panic(err)
	}
	traced.PtracePeek(ctx, 0x1234, got)
	fmt.Printf("after poke:          %q\n", got)

	// --- execve: validate an image header ---
	d, err := memdisk.New(k, 64*fs.BlockSize)
	if err != nil {
		panic(err)
	}
	fsys, err := fs.Mkfs(ctx, k, d, 16)
	if err != nil {
		panic(err)
	}
	img := proc.EncodeImage(0x401000, 4096, 8192)
	if err := fsys.WriteFile(ctx, "a.out", img); err != nil {
		panic(err)
	}
	hdr, err := proc.Execve(ctx, k, fsys, "a.out")
	if err != nil {
		panic(err)
	}
	fmt.Printf("execve a.out: entry=%#x text=%d data=%d\n", hdr.Entry, hdr.Text, hdr.Data)

	// Non-executables are rejected after the header peek.
	fsys.WriteFile(ctx, "notes.txt", []byte("just text"))
	if _, err := proc.Execve(ctx, k, fsys, "notes.txt"); err != nil {
		fmt.Printf("execve notes.txt: %v\n", err)
	}

	c := k.M.SnapshotCounters()
	s := k.Map.Stats()
	fmt.Printf("\nmapper: %d allocs (%.0f%% hits); coherence: %d local, %d remote invalidations\n",
		s.Allocs, s.HitRate()*100, c.LocalInv, c.RemoteInvIssued)
	fmt.Println("all of this ran on a 4-virtual-CPU machine: CPU-private mappings")
	fmt.Println("never needed an interprocessor interrupt.")
}
