// Webserver replays a synthetic NASA-like trace against the simulated web
// server (sendfile over the zero-copy socket path), sweeping the sf_buf
// mapping-cache size the way the paper's Figure 19 does, and reporting
// throughput, cache hit rate, and TLB invalidations for each configuration.
package main

import (
	"flag"
	"fmt"
	"os"

	root "sfbuf"
	"sfbuf/internal/cycles"
	"sfbuf/internal/workloads"
)

func serve(plat root.Platform, mk root.MapperKind, cacheEntries int, offload bool,
	trace *workloads.Trace) (mbits float64, hit float64, local, remote uint64) {

	diskPages := int(trace.Footprint>>12)*2 + 4096
	k := root.MustBoot(root.Config{
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    diskPages,
		Backed:       true,
		CacheEntries: cacheEntries,
	})
	corpus, err := workloads.BuildCorpus(k.Ctx(0), k, trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(1)
	}
	k.Reset()

	cfg := workloads.DefaultWeb(k)
	cfg.ChecksumOffload = offload
	res, err := workloads.WebServer(k, corpus, trace, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webserver:", err)
		os.Exit(1)
	}
	c := k.M.SnapshotCounters()
	return cycles.Mbps(res.BytesServed, k.M.ParallelCycles(), plat.FreqGHz),
		k.Map.Stats().HitRate(), c.LocalInv, c.RemoteInvIssued
}

func main() {
	footprint := flag.Int64("footprint", 32<<20, "corpus footprint in bytes")
	requests := flag.Int("requests", 4000, "requests to replay")
	flag.Parse()

	trace := workloads.SynthesizeTrace("NASA-like", *footprint, 400, *requests, 1.2, 1994)
	plat := root.XeonMP()
	fmt.Printf("web server on %s: %d files, %d MB footprint, %d requests\n\n",
		plat.Name, len(trace.FileSizes), trace.Footprint>>20, len(trace.Requests))

	// Cache sizes scaled to the footprint like the paper's 64K vs 6K
	// entries against 258.7 MB.
	bigCache := int(*footprint >> 12) // maps the whole corpus
	smallCache := bigCache / 11       // ~9% of it, like 6K/64K
	fmt.Printf("%-28s %-8s %10s %9s %9s %9s\n",
		"config", "csum", "Mbit/s", "hit rate", "local", "remote")
	for _, cfg := range []struct {
		label   string
		mk      root.MapperKind
		entries int
	}{
		{"sf_buf, full-corpus cache", root.SFBufKernel, bigCache},
		{"sf_buf, small cache", root.SFBufKernel, smallCache},
		{"original kernel", root.OriginalKernel, 0},
	} {
		for _, offload := range []bool{true, false} {
			csum := "off"
			if offload {
				csum = "nic"
			}
			mbits, hit, local, remote := serve(plat, cfg.mk, cfg.entries, offload, trace)
			hitStr := "n/a"
			if cfg.mk == root.SFBufKernel {
				hitStr = fmt.Sprintf("%.1f%%", hit*100)
			}
			fmt.Printf("%-28s %-8s %10.0f %9s %9d %9d\n",
				cfg.label, csum, mbits, hitStr, local, remote)
		}
	}
	fmt.Println("\nthe paper's Figure 19/20 story: a small cache keeps most of the")
	fmt.Println("throughput because checksum offload leaves PTE accessed bits clear,")
	fmt.Println("so even cache misses skip TLB invalidations.")
}
