// Package sfbuf is a simulation-backed reproduction of "A Portable Kernel
// Abstraction for Low-Overhead Ephemeral Mapping Management" (Elmeleegy,
// Chanda, Cox, Zwaenepoel; USENIX ATC 2005): the sf_buf ephemeral mapping
// interface, its machine-dependent implementations, the original-kernel
// baseline, every kernel subsystem the paper converts, and the full
// evaluation suite.
//
// The package is a facade over the internal packages, exposing the pieces
// a downstream user needs:
//
//   - Boot a simulated kernel for one of the paper's five platforms,
//     running either the sf_buf kernel or the original kernel.
//   - Allocate and free ephemeral mappings through the Table-1 interface.
//   - Drive the converted subsystems: pipes, memory disks, a filesystem,
//     zero-copy sockets, sendfile, ptrace and execve.
//   - Run the paper's experiments and regenerate its figures.
//
// Quick start:
//
//	k := sfbuf.MustBoot(sfbuf.Config{
//		Platform: sfbuf.XeonMP(),
//		Mapper:   sfbuf.SFBufKernel,
//		Backed:   true,
//	})
//	ctx := k.Ctx(0)
//	page, _ := k.M.Phys.Alloc()
//	b, _ := k.Map.Alloc(ctx, page, sfbuf.Private)
//	// ... use b.KVA() through kcopy, then:
//	k.Map.Free(ctx, b)
package sfbuf

import (
	"sfbuf/internal/arch"
	"sfbuf/internal/experiments"
	"sfbuf/internal/kernel"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// Core ephemeral-mapping types (Table 1 of the paper).
type (
	// Buf is an ephemeral mapping object (an sf_buf): KVA() returns its
	// kernel virtual address, Page() its physical page.
	Buf = sfbuf.Buf
	// Flags modify Alloc behaviour: Private, NoWait, Catch.
	Flags = sfbuf.Flags
	// Mapper is the ephemeral mapping interface: the four Table-1
	// functions plus the vectored AllocBatch/FreeBatch calls.
	Mapper = sfbuf.Mapper
	// BatchMapper is the historical name for a mapper with the vectored
	// calls, now an alias of Mapper.
	BatchMapper = sfbuf.BatchMapper
	// MapperStats reports mapping-cache behaviour.
	MapperStats = sfbuf.Stats
	// Run is a contiguous multi-page ephemeral mapping: one VA window
	// (when the engine provides contiguity) released as a unit through
	// FreeRun, readable under ranged translation.
	Run = sfbuf.Run
	// RunWindowStats counts the sharded engine's run-window pool events
	// (reservations, reuses, page-set revives, laundering rounds) and
	// reports its live capacity gauges (clean vs parked pages, largest
	// free arena run).
	RunWindowStats = sfbuf.RunWindowStats
	// DaemonStats counts the background reclaim-and-laundering daemon's
	// activity (idle passes, watermark refill rounds, age-triggered
	// window laundering, clean-window trims), reported by
	// Kernel.DaemonStats.  The daemon is configured through
	// Config.ReclaimWatermark and Config.LaunderAge and driven by
	// Kernel.Idle.
	DaemonStats = sfbuf.DaemonStats
)

// Alloc flags (Section 4.1).
const (
	// Private marks a mapping for the exclusive use of the calling
	// thread, letting implementations skip remote TLB invalidations.
	Private = sfbuf.Private
	// NoWait forbids sleeping when no buffer is available.
	NoWait = sfbuf.NoWait
	// Catch makes the sleep interruptible by a signal.
	Catch = sfbuf.Catch
)

// Alloc errors.
var (
	// ErrWouldBlock is Alloc's NoWait failure.
	ErrWouldBlock = sfbuf.ErrWouldBlock
	// ErrInterrupted is Alloc's interrupted-sleep failure.
	ErrInterrupted = sfbuf.ErrInterrupted
	// ErrBatchTooLarge is AllocBatch's over-capacity failure.
	ErrBatchTooLarge = sfbuf.ErrBatchTooLarge
)

// NativeBatch reports whether a mapper's vectored calls amortize work
// across the run (sharded cache, amd64 direct map, original kernel)
// rather than looping over the single-page calls (the paper's
// global-lock cache).
func NativeBatch(m Mapper) bool { return sfbuf.NativeBatch(m) }

// NativeRun reports whether a mapper's AllocRun provides genuinely
// contiguous windows (sharded cache, amd64 direct map, the original
// kernel's 64-bit pmap_qenter range) rather than a scattered fallback.
func NativeRun(m Mapper) bool { return sfbuf.NativeRun(m) }

// Kernel assembly.
type (
	// Config describes the kernel to boot: platform, mapper kind,
	// physical memory, mapping-cache size.
	Config = kernel.Config
	// Kernel is a booted simulated kernel.
	Kernel = kernel.Kernel
	// MapperKind selects the sf_buf kernel or the original kernel.
	MapperKind = kernel.MapperKind
	// CachePolicy selects the mapping-cache engine: the sharded per-CPU
	// design with batched shootdowns (default) or the paper's
	// global-lock cache.
	CachePolicy = kernel.CachePolicy
	// VectoredPolicy decides whether the converted subsystems map
	// multi-page extents through the vectored calls.
	VectoredPolicy = kernel.VectoredPolicy
	// ContigPolicy decides whether the converted subsystems map
	// multi-page extents as contiguous runs.
	ContigPolicy = kernel.ContigPolicy
	// MapConsumer is a subsystem's contiguity-policy handle: static under
	// pinned policies, self-tuning per window-size epoch under the
	// adaptive one.
	MapConsumer = kernel.MapConsumer
	// PolicyStats snapshots one consumer's adaptive-policy state
	// (mode, reuse EWMAs, flips) as reported by Kernel.PolicyStats.
	PolicyStats = kernel.PolicyStats
	// PolicyClassStats is one window-size class within PolicyStats.
	PolicyClassStats = kernel.PolicyClassStats
	// ShardedConfig tunes the sharded engine's stripe count, per-CPU
	// freelist depth and reclaim batch.
	ShardedConfig = sfbuf.ShardedConfig
	// Context is a kernel thread of control pinned to a virtual CPU.
	Context = smp.Context
	// Platform describes one of the evaluation machines.
	Platform = arch.Platform
	// Page is a physical page (the vm_page).
	Page = vm.Page
	// UserMem is a user-space buffer backed by physical pages.
	UserMem = vm.UserMem
	// PhysPolicy selects the physical-frame allocator (Config.PhysBuddy):
	// the buddy allocator whose coalescing keeps contiguity recoverable,
	// or the seed's LIFO free stack.
	PhysPolicy = kernel.PhysPolicy
	// PhysStats is the frame allocator's fragmentation snapshot (free
	// blocks per order, largest contiguous free extent, split/coalesce
	// counts), reported by Kernel.PhysStats.
	PhysStats = vm.PhysStats
	// HomingPolicy selects how mapping state is placed on a multi-socket
	// machine (Config.Sockets > 1): socket-homed or flat hash-striped.
	HomingPolicy = kernel.HomingPolicy
	// TierHintPolicy decides whether the kernel runs the consumer-hinted
	// hot-extent placement keeper on a tiered physical pool
	// (Config.Tiers >= 2 with Config.FastFraction of each socket's frames
	// fast).
	TierHintPolicy = kernel.TierHintPolicy
	// TierStats is the tiered-memory snapshot (tier residency and free
	// stock, promotion/demotion counts, accumulated slow-tier surcharge,
	// per-consumer fast-tier hit rates), reported by Kernel.TierStats.
	TierStats = kernel.TierStats
	// TierConsumerStats is one consumer's fast-tier hit rate within
	// TierStats.
	TierConsumerStats = kernel.TierConsumerStats
)

// Kernel variants.
const (
	// SFBufKernel boots the paper's kernel with the architecture's
	// sf_buf implementation.
	SFBufKernel = kernel.SFBuf
	// OriginalKernel boots the baseline: fresh virtual address per
	// mapping, global TLB invalidation per unmapping.
	OriginalKernel = kernel.OriginalKernel
)

// Mapping-cache engines (Config.Cache).
const (
	// CacheSharded is the default: lock-striped shards, per-CPU clean
	// freelists, and teardown shootdowns batched into ranged IPI rounds.
	CacheSharded = kernel.CacheSharded
	// CacheGlobal is the paper's Section 4.2 single-lock cache, used by
	// the figure-reproduction experiments.
	CacheGlobal = kernel.CacheGlobal
)

// Vectored-I/O policies (Config.Vectored).
const (
	// VectoredAuto batches multi-page I/O exactly where the booted
	// engine makes batching a genuine fast path (the default).
	VectoredAuto = kernel.VectoredAuto
	// VectoredOn forces every converted subsystem onto the vectored
	// path.
	VectoredOn = kernel.VectoredOn
	// VectoredOff forces per-page mapping everywhere (ablation knob).
	VectoredOff = kernel.VectoredOff
)

// Contiguous-run policies (Config.Contig).
const (
	// ContigAuto is the default: on engines with native contiguity the
	// per-consumer ADAPTIVE policy (each subsystem starts on the run
	// path and flips itself between runs and batches from its observed
	// reuse); the figure-reproduction engines keep their historical
	// paths.
	ContigAuto = kernel.ContigAuto
	// ContigOn forces every converted subsystem onto the run path.
	ContigOn = kernel.ContigOn
	// ContigOff forces batches/pages everywhere (ablation knob).
	ContigOff = kernel.ContigOff
	// ContigAdaptive pins the adaptive per-consumer policy by name
	// (today identical to Auto's sf_buf resolution).
	ContigAdaptive = kernel.ContigAdaptive
)

// Physical-frame allocator policies (Config.PhysBuddy).
const (
	// PhysBuddyAuto is the default: the buddy allocator on sf_buf kernels
	// with native engines; the LIFO stack on the figure-reproduction
	// configurations (global-lock cache, original kernel), preserving
	// their bit-exact frame allocation order.
	PhysBuddyAuto = kernel.PhysBuddyAuto
	// PhysBuddyOn forces the buddy allocator everywhere.
	PhysBuddyOn = kernel.PhysBuddyOn
	// PhysBuddyOff forces the LIFO free stack everywhere (ablation knob).
	PhysBuddyOff = kernel.PhysBuddyOff
)

// State-placement policies for multi-socket machines (Config.Homing,
// effective when Config.Sockets > 1).
const (
	// HomingAuto homes mapping state per socket whenever the machine has
	// more than one socket and the engine is sharded (the default).
	HomingAuto = kernel.HomingAuto
	// HomingOn forces socket homing (no-op at one socket).
	HomingOn = kernel.HomingOn
	// HomingOff pins the flat hash-striped layout even on a multi-socket
	// machine — the NUMA experiment's baseline arm.
	HomingOff = kernel.HomingOff
)

// Hot-extent placement policies for tiered physical pools (Config.TierHints,
// effective when Config.Tiers >= 2; Config.Tiers defaults to a single
// uniform tier, which is byte-identical to the untiered build).
const (
	// TierHintAuto runs the placement keeper whenever the pool is tiered
	// and the frame allocator is the buddy allocator (the default).
	TierHintAuto = kernel.TierHintAuto
	// TierHintOn is today identical to Auto's tiered resolution.
	TierHintOn = kernel.TierHintOn
	// TierHintOff books the tier split but leaves placement to allocation
	// order — the tier-oblivious baseline arm.
	TierHintOff = kernel.TierHintOff
)

// ErrNoContig is AllocContig's failure: no aligned physically contiguous
// extent of the requested size is currently free (or the pool is LIFO).
var ErrNoContig = vm.ErrNoContig

// PageSize is the simulated machine's page size in bytes.
const PageSize = vm.PageSize

// MaxContigPages is the widest physically contiguous extent one
// AllocContig call can return on a buddy-managed machine.
const MaxContigPages = vm.MaxContigPages

// Boot constructs a simulated kernel per the configuration.
func Boot(cfg Config) (*Kernel, error) { return kernel.Boot(cfg) }

// MustBoot is Boot, panicking on error.
func MustBoot(cfg Config) *Kernel { return kernel.MustBoot(cfg) }

// AllocUserMem allocates a page-backed user buffer on kernel k.
func AllocUserMem(k *Kernel, size int) (*UserMem, error) {
	return vm.AllocUserMem(k.M.Phys, size)
}

// The paper's evaluation platforms (Section 6.1), plus the multi-socket
// NUMA extrapolation used by the scale and numa experiments.
var (
	XeonUP    = arch.XeonUP
	XeonHTT   = arch.XeonHTT
	XeonMP    = arch.XeonMP
	XeonMPHTT = arch.XeonMPHTT
	OpteronMP = arch.OpteronMP
	Sparc64MP = arch.Sparc64MP
	// XeonNUMA builds a multi-package Xeon with asymmetric cross-socket
	// costs; boot it with Config.Sockets set to the same socket count.
	XeonNUMA = arch.XeonNUMA
)

// EvaluationPlatforms returns the five platforms in figure order.
func EvaluationPlatforms() []Platform { return arch.Evaluation() }

// Experiment access: run any of the paper's figures programmatically.
type (
	// ExperimentOptions configures experiment runs (scale, platforms).
	ExperimentOptions = experiments.Options
	// ExperimentResult is one reproduced table or figure.
	ExperimentResult = experiments.Result
)

// Experiments returns the registered experiment ids in figure order.
func Experiments() []string { return experiments.IDs() }

// RunExperiment executes one experiment by id ("fig2", "sec3", ...).
func RunExperiment(id string, o ExperimentOptions) (*ExperimentResult, error) {
	r, ok := experiments.Get(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return r(o)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "sfbuf: unknown experiment " + string(e)
}

// DefaultExperimentOptions returns the paper-scale configuration.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }
