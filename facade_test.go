package sfbuf

import (
	"errors"
	"testing"

	"sfbuf/internal/kcopy"
)

// TestFacadeQuickstart runs the README's quickstart path end to end
// through the public facade.
func TestFacadeQuickstart(t *testing.T) {
	k := MustBoot(Config{
		Platform:     XeonMP(),
		Mapper:       SFBufKernel,
		PhysPages:    128,
		Backed:       true,
		CacheEntries: 32,
	})
	ctx := k.Ctx(0)
	page, err := k.M.Phys.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Map.Alloc(ctx, page, Private)
	if err != nil {
		t.Fatal(err)
	}
	if err := kcopy.CopyIn(ctx, k.Pmap, b.KVA(), []byte("facade")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := kcopy.CopyOut(ctx, k.Pmap, got, b.KVA()); err != nil {
		t.Fatal(err)
	}
	if string(got) != "facade" {
		t.Fatalf("read %q", got)
	}
	k.Map.Free(ctx, b)
}

func TestFacadePlatforms(t *testing.T) {
	if len(EvaluationPlatforms()) != 5 {
		t.Fatal("expected the paper's five platforms")
	}
	for _, boot := range []func() Platform{XeonUP, XeonHTT, XeonMP, XeonMPHTT, OpteronMP, Sparc64MP} {
		p := boot()
		k, err := Boot(Config{Platform: p, Mapper: SFBufKernel, PhysPages: 64, CacheEntries: 16})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if k.M.NumCPUs() != p.NumCPUs {
			t.Fatalf("%s: cpus %d != %d", p.Name, k.M.NumCPUs(), p.NumCPUs)
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) != 27 {
		t.Fatalf("experiments = %d, want 27", len(ids))
	}
	res, err := RunExperiment("sec3", ExperimentOptions{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "sec3" || len(res.Rows) == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	if _, err := RunExperiment("nope", DefaultExperimentOptions()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFacadeUserMemAndErrors(t *testing.T) {
	k := MustBoot(Config{Platform: OpteronMP(), Mapper: SFBufKernel, PhysPages: 64})
	um, err := AllocUserMem(k, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if um.Len() != 8192 {
		t.Fatalf("len = %d", um.Len())
	}
	um.Release()
	if !errors.Is(ErrWouldBlock, ErrWouldBlock) || ErrWouldBlock == ErrInterrupted {
		t.Fatal("error identities broken")
	}
}
