module sfbuf

go 1.24
