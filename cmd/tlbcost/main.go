// Command tlbcost reproduces the paper's Section 3 microbenchmark: the
// cost, in CPU cycles, of local and remote TLB invalidations on the Xeon
// and Opteron machines, with the page-table entry resident in the data
// cache and not.
//
// The paper implements this as a custom system call that invalidates a
// mapping 100,000 times; this command does the same against the simulated
// machines and prints measured-vs-paper numbers.
package main

import (
	"flag"
	"fmt"
	"os"

	"sfbuf/internal/experiments"
)

func main() {
	iters := flag.Float64("scale", 1.0, "iteration scale (1.0 = 100,000 iterations)")
	flag.Parse()

	res, err := experiments.RunSec3(experiments.Options{Scale: *iters})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlbcost:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
}
