// Command locstat is the analogue of the paper's Section 5, which reports
// how much subsystem code the sf_buf interface eliminated ("the conversion
// of pipes eliminated 42 lines of code ... most of the eliminated code was
// for the allocation of temporary virtual addresses").
//
// It parses this repository's Go sources and compares, per subsystem, the
// size of the sf_buf-interface code path against the original-kernel code
// path — the same modularity argument, measured on this reproduction.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// funcLines returns the line count of each named function or method in a
// file, keyed by name.
func funcLines(fset *token.FileSet, path string) (map[string]int, error) {
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for _, d := range f.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		start := fset.Position(fn.Pos()).Line
		end := fset.Position(fn.End()).Line
		out[fn.Name.Name] = end - start + 1
	}
	return out, nil
}

// fileLines returns the total line count of a file.
func fileLines(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return strings.Count(string(b), "\n") + 1, nil
}

type comparison struct {
	subsystem string
	sfbufDesc string
	sfbuf     int
	origDesc  string
	orig      int
	paperNote string
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()
	fset := token.NewFileSet()

	mustFuncs := func(rel string) map[string]int {
		m, err := funcLines(fset, filepath.Join(*root, rel))
		if err != nil {
			fmt.Fprintf(os.Stderr, "locstat: %s: %v\n", rel, err)
			os.Exit(1)
		}
		return m
	}
	mustFile := func(rel string) int {
		n, err := fileLines(filepath.Join(*root, rel))
		if err != nil {
			fmt.Fprintf(os.Stderr, "locstat: %s: %v\n", rel, err)
			os.Exit(1)
		}
		return n
	}

	pipe := mustFuncs("internal/pipe/pipe.go")
	sum := func(m map[string]int, names ...string) int {
		t := 0
		for _, n := range names {
			t += m[n]
		}
		return t
	}

	comparisons := []comparison{
		{
			subsystem: "pipe direct-read path",
			sfbufDesc: "readDirect (per-page sf_buf loop)",
			sfbuf:     pipe["readDirect"],
			origDesc:  "readDirectBatch + finishWindow (window KVA management)",
			orig:      sum(pipe, "readDirectBatch", "finishWindow"),
			paperNote: "paper: converting pipes eliminated 42 lines",
		},
		{
			subsystem: "ephemeral mapping layer (amd64)",
			sfbufDesc: "internal/sfbuf/amd64.go (direct map)",
			sfbuf:     mustFile("internal/sfbuf/amd64.go"),
			origDesc:  "internal/sfbuf/original.go (VA alloc + shootdowns)",
			orig:      mustFile("internal/sfbuf/original.go"),
			paperNote: "the amd64 sf_buf implementation is 'nothing more than cast operations'",
		},
		{
			subsystem: "ephemeral mapping layer (i386)",
			sfbufDesc: "internal/sfbuf/i386.go + cache.go (mapping cache)",
			sfbuf:     mustFile("internal/sfbuf/i386.go") + mustFile("internal/sfbuf/cache.go"),
			origDesc:  "internal/sfbuf/original.go",
			orig:      mustFile("internal/sfbuf/original.go"),
			paperNote: "the complexity moves INTO the MD layer once, out of every subsystem",
		},
	}

	fmt.Println("Lines-of-code comparison (Section 5 analogue)")
	fmt.Println()
	for _, c := range comparisons {
		fmt.Printf("%s\n", c.subsystem)
		fmt.Printf("  sf_buf path:   %4d lines  (%s)\n", c.sfbuf, c.sfbufDesc)
		fmt.Printf("  original path: %4d lines  (%s)\n", c.orig, c.origDesc)
		if c.sfbuf < c.orig {
			fmt.Printf("  saved:         %4d lines\n", c.orig-c.sfbuf)
		}
		fmt.Printf("  note: %s\n\n", c.paperNote)
	}

	// Package inventory, for the README's architecture overview.
	fmt.Println("Per-package source sizes:")
	var pkgs []string
	filepath.Walk(filepath.Join(*root, "internal"), func(path string, info os.FileInfo, err error) error {
		if err == nil && info.IsDir() {
			pkgs = append(pkgs, path)
		}
		return nil
	})
	for _, p := range pkgs {
		entries, err := os.ReadDir(p)
		if err != nil {
			continue
		}
		var code, tests int
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			n, err := fileLines(filepath.Join(p, e.Name()))
			if err != nil {
				continue
			}
			if strings.HasSuffix(e.Name(), "_test.go") {
				tests += n
			} else {
				code += n
			}
		}
		if code > 0 {
			rel, _ := filepath.Rel(*root, p)
			fmt.Printf("  %-28s %5d code  %5d test\n", rel, code, tests)
		}
	}
}
