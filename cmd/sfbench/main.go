// Command sfbench runs the paper's evaluation experiments against the
// simulated kernels and prints the tables behind every figure.
//
// Usage:
//
//	sfbench -list
//	sfbench -run fig2 -scale 0.1
//	sfbench -all -scale 1.0
//
// Scale 1.0 is the paper's configuration (50 MB pipe transfers, 512 MB
// memory disks, 100,000 PostMark transactions, full trace footprints);
// smaller scales shrink workloads and the mapping cache together so the
// cache-to-footprint ratios that drive the results are preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sfbuf/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		run     = flag.String("run", "", "comma-separated experiment ids to run")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
		verbose = flag.Bool("v", false, "print progress")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "sfbench: specify -list, -all, or -run <ids>")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "sfbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s completed in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
