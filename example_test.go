package sfbuf_test

import (
	"fmt"

	root "sfbuf"
	"sfbuf/internal/kcopy"
)

// ExampleBoot demonstrates the quickstart path: boot a simulated Xeon
// running the sf_buf kernel, map a page, move data through the mapping,
// and observe that repeated mappings of the same page are cache hits.
// The default sharded cache allocates from clean per-CPU buffers, so even
// the initial shared-mapping miss needs no shootdown; booting with
// Cache: CacheGlobal selects the paper's cache, which pays one IPI round
// to widen that first mapping's cpumask.
func ExampleBoot() {
	k := root.MustBoot(root.Config{
		Platform:     root.XeonMP(),
		Mapper:       root.SFBufKernel,
		PhysPages:    64,
		Backed:       true,
		CacheEntries: 16,
	})
	ctx := k.Ctx(0)
	page, _ := k.M.Phys.Alloc()

	for i := 0; i < 3; i++ {
		b, _ := k.Map.Alloc(ctx, page, 0)
		kcopy.CopyIn(ctx, k.Pmap, b.KVA(), []byte("payload"))
		k.Map.Free(ctx, b)
	}
	s := k.Map.Stats()
	fmt.Printf("allocs=%d hits=%d misses=%d\n", s.Allocs, s.Hits, s.Misses)
	fmt.Printf("remote invalidations issued: %d\n", k.M.Counters().RemoteInvIssued.Load())
	// Output:
	// allocs=3 hits=2 misses=1
	// remote invalidations issued: 0
}

// ExampleBoot_originalKernel shows the baseline the paper compares
// against: every mapping allocates a fresh kernel virtual address and
// every free performs a global TLB invalidation.
func ExampleBoot_originalKernel() {
	k := root.MustBoot(root.Config{
		Platform:  root.XeonMP(),
		Mapper:    root.OriginalKernel,
		PhysPages: 64,
		Backed:    true,
	})
	ctx := k.Ctx(0)
	page, _ := k.M.Phys.Alloc()

	for i := 0; i < 3; i++ {
		b, _ := k.Map.Alloc(ctx, page, 0)
		k.Map.Free(ctx, b)
	}
	c := k.M.SnapshotCounters()
	fmt.Printf("local=%d remote=%d\n", c.LocalInv, c.RemoteInvIssued)
	// Output:
	// local=3 remote=3
}

// ExampleBoot_vectored maps a multi-page extent through the vectored
// calls — one AllocBatch and one FreeBatch for the whole run.  On the
// default sharded cache the batch takes one shard-lock round trip per
// shard it touches (instead of one per page), restocks misses with a
// bulk freelist pop, and still needs no shootdowns: clean buffers carry
// no TLB presence, and a Private batch taints only the calling CPU.
// Remapping the same pages is all hits.  When to batch: any multi-page
// extent handled as a unit — a pipe's loaned window, a memory-disk run,
// a sendfile burst.  Knob interactions: Config.ReclaimBatch decides how
// many buffers a shortage mid-batch recycles under one shootdown flush,
// and Config.ShootdownBatch caps the queue that flush drains; a batch
// never issues more than one forced flush per reclaim round it triggers.
func ExampleBoot_vectored() {
	k := root.MustBoot(root.Config{
		Platform:     root.XeonMPHTT(),
		Mapper:       root.SFBufKernel,
		PhysPages:    128,
		Backed:       true,
		CacheEntries: 32,
	})
	ctx := k.Ctx(0)
	pages := make([]*root.Page, 8)
	for i := range pages {
		pages[i], _ = k.M.Phys.Alloc()
	}

	bufs, _ := k.Map.AllocBatch(ctx, pages, root.Private)
	kcopy.CopyInVec(ctx, k.Pmap, bufs, 0, []byte("vectored payload"))
	k.Map.FreeBatch(ctx, bufs)

	again, _ := k.Map.AllocBatch(ctx, pages, root.Private)
	k.Map.FreeBatch(ctx, again)

	s := k.Map.Stats()
	fmt.Printf("native batch: %v\n", root.NativeBatch(k.Map))
	fmt.Printf("batches=%d pages=%d hits=%d misses=%d\n",
		s.BatchAllocs, s.BatchPages, s.Hits, s.Misses)
	fmt.Printf("remote invalidations issued: %d\n", k.M.Counters().RemoteInvIssued.Load())
	// Output:
	// native batch: true
	// batches=2 pages=16 hits=8 misses=8
	// remote invalidations issued: 0
}

// ExampleBoot_contiguous maps a multi-page extent as ONE contiguous run:
// a single reserved VA window, installed in one page-table pass, copied
// across page boundaries under ranged translation (one page-table walk
// for the whole crossing instead of one per page), and released as a
// unit.
func ExampleBoot_contiguous() {
	k := root.MustBoot(root.Config{
		Platform:     root.XeonMPHTT(),
		Mapper:       root.SFBufKernel,
		PhysPages:    128,
		Backed:       true,
		CacheEntries: 32,
		// Contig defaults to Auto: runs wherever the engine provides
		// native contiguity (the sharded cache does).
	})
	ctx := k.Ctx(0)
	pages := make([]*root.Page, 8)
	for i := range pages {
		pages[i], _ = k.M.Phys.Alloc()
	}

	run, _ := k.Map.AllocRun(ctx, pages, root.Private)
	contiguous := run.Contiguous()
	payload := []byte("a payload crossing page boundaries")
	kcopy.CopyInRun(ctx, k.Pmap, run, root.PageSize-10, payload)
	back := make([]byte, len(payload))
	kcopy.CopyOutRun(ctx, k.Pmap, back, run, root.PageSize-10)
	k.Map.FreeRun(ctx, run)

	s := k.Map.Stats()
	fmt.Printf("native runs: %v, contiguous: %v\n", root.NativeRun(k.Map), contiguous)
	fmt.Printf("runs=%d pages=%d round trip: %q\n", s.RunAllocs, s.RunPages, back)
	fmt.Printf("walks for both copies: %d\n", k.M.Counters().PTWalks.Load())
	// Output:
	// native runs: true, contiguous: true
	// runs=1 pages=8 round trip: "a payload crossing page boundaries"
	// walks for both copies: 1
}

// ExampleBoot_adaptive shows the page-set window cache and the adaptive
// per-consumer contiguity policy: re-allocating a just-freed extent
// revives its parked window (a run-granularity cache hit: no PTE
// writes, no walks, no invalidations), and a consumer handle reports
// the policy state the subsystems decide with.
func ExampleBoot_adaptive() {
	k := root.MustBoot(root.Config{
		Platform:     root.XeonMPHTT(),
		Mapper:       root.SFBufKernel,
		PhysPages:    128,
		Backed:       true,
		CacheEntries: 32,
		// Contig defaults to Auto, which on the sharded engine is the
		// adaptive per-consumer policy (ContigAdaptive pins it by name).
	})
	ctx := k.Ctx(0)
	pages := make([]*root.Page, 8)
	for i := range pages {
		pages[i], _ = k.M.Phys.Alloc()
	}

	consumer := k.Consumer("example")
	for i := 0; i < 3; i++ {
		if consumer.UseRuns(ctx, pages) { // observe the extent, pick a path
			run, _ := k.Map.AllocRun(ctx, pages, root.Private)
			k.Map.FreeRun(ctx, run) // parks the window, revivable
		}
	}
	s := k.Map.Stats()
	ps := consumer.PolicyStats()
	fmt.Printf("revives=%d of %d runs; hits=%d\n", s.RunRevives, s.RunAllocs, s.Hits)
	fmt.Printf("consumer %q adaptive=%v run-decisions=%d\n", ps.Name, ps.Adaptive, ps.RunDecisions)
	// Output:
	// revives=2 of 3 runs; hits=16
	// consumer "example" adaptive=true run-decisions=3
}

// ExampleRunExperiment regenerates one of the paper's tables
// programmatically (here Section 3's microbenchmark, at reduced scale).
func ExampleRunExperiment() {
	res, err := root.RunExperiment("sec3", root.ExperimentOptions{Scale: 0.01})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ID, "rows:", len(res.Rows))
	// Output:
	// sec3 rows: 9
}
